package obs

// Canonical metric names. Producers register under these so the catalogue
// in DESIGN.md, the -stats-json schema, and dashboards agree. Sharded
// counters flatten to "<name>.sm<i>" per shard plus the total under the
// bare name.
const (
	// internal/sim — per-SM sharded, merged order-independently.
	MSimWarpInstrs           = "sim.issue.warp_instrs"
	MSimThreadInstrs         = "sim.issue.thread_instrs"
	MSimInjectedWarpInstrs   = "sim.issue.injected_warp_instrs"
	MSimInjectedThreadInstrs = "sim.issue.injected_thread_instrs"
	MSimHandlerCalls         = "sim.issue.handler_calls"
	MSimCycles               = "sim.cycles"
	MSimBarrierStalls        = "sim.stall.barrier_sweeps"
	MSimScoreboardStalls     = "sim.stall.scoreboard"
	MSimDivergentBranches    = "sim.divergence.branches"
	MSimLaunches             = "sim.launches"
	MSimCTAs                 = "sim.ctas"
	// Launch geometry and per-warp peak, published once per launch from
	// the post-merge goroutine (threads accumulate; the max gauge is
	// refreshed with the latest launch's peak).
	MSimThreads       = "sim.threads"
	MSimMaxWarpInstrs = "sim.issue.max_warp_instrs"

	// internal/mem — device-lifetime gauges, refreshed at kernel exit.
	MMemL1Accesses   = "mem.l1.accesses"
	MMemL1Hits       = "mem.l1.hits"
	MMemL1Misses     = "mem.l1.misses"
	MMemL1Evictions  = "mem.l1.evictions"
	MMemL2Accesses   = "mem.l2.accesses"
	MMemL2Hits       = "mem.l2.hits"
	MMemL2Misses     = "mem.l2.misses"
	MMemL2Evictions  = "mem.l2.evictions"
	MMemDRAMTransact = "mem.dram.transactions"
	MMemGlobalTrans  = "mem.global.transactions"

	// internal/sassi — instrumentation-time counters.
	MSassiSites          = "sassi.instrument.sites"
	MSassiInjectedInstrs = "sassi.instrument.injected_instrs"
	// Per-handler attribution: the handler symbol is appended, e.g.
	// sassi.instrument.injected_instrs.sassi_before_handler.
	MSassiInjectedPrefix    = "sassi.instrument.injected_instrs."
	MSassiSaveRestoreInstrs = "sassi.instrument.save_restore_instrs"
	MSassiKernels           = "sassi.instrument.kernels"
	MSassiCacheHits         = "sassi.compile_cache.hits"
	MSassiCacheMisses       = "sassi.compile_cache.misses"

	// internal/handlers (via sassi.Runtime) — per-tool dispatch counts;
	// the handler symbol is appended: handlers.dispatch.<symbol>.
	MHandlerDispatchPrefix = "handlers.dispatch."
	// Warp-occupancy histogram of dispatches (active lanes per call).
	MHandlerActiveLanes = "handlers.dispatch_active_lanes"

	// internal/obs/pcsamp — PC-sampling profiler, published at launch end
	// (never on the sampling hot path). Samples are period-weighted.
	MPCSampSamples   = "pcsamp.samples"
	MPCSampLaunches  = "pcsamp.launches"
	MPCSampTruncated = "pcsamp.truncated_stacks"

	// internal/faults — campaign progress.
	MFaultsRuns        = "faults.runs"
	MFaultsRunsFailed  = "faults.runs_failed"
	MFaultsWorkers     = "faults.workers"
	MFaultsSitesTotal  = "faults.sites_total"
	MFaultsOutcomePref = "faults.outcome."
)
