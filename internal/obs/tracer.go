package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Process IDs partition the timeline into Perfetto process groups: host
// phases (compile, instrument, campaign control) run on wall-clock time,
// the device lanes run on modeled cycles, and campaign workers get a lane
// per worker.
const (
	PidHost     = 0 // wall-clock µs: compile, instrument, launch wrappers
	PidDevice   = 1 // modeled cycles: one lane (tid) per SM
	PidCampaign = 2 // wall-clock µs: one lane per fault-campaign worker
)

// Conventional thread ids within PidHost.
const (
	TidHostMain    = 0 // top-level driver: launches, drains, reports
	TidHostCompile = 1 // compile + instrument phases (CompileCache builds)
)

// traceEvent is one Chrome trace-event object. Only the "X" (complete),
// "M" (metadata), and "C" (counter) phases are emitted.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Tracer records spans and writes them as Chrome trace-event JSON, the
// format Perfetto and chrome://tracing load directly. A nil *Tracer is a
// valid disabled tracer: every method is a no-op, so call sites need no
// flag checks beyond the nil test they already do for speed.
//
// Recording is mutex-guarded (spans are emitted at CTA/kernel/dispatch
// granularity, never per instruction, so contention is negligible), and
// WriteJSON sorts events by (pid, tid, ts, name) so output is
// deterministic even when SM goroutines raced to record.
type Tracer struct {
	mu      sync.Mutex
	events  []traceEvent
	start   time.Time
	dropped uint64

	// MaxEvents caps the buffer (0 = default 1<<20). Spans beyond the cap
	// are counted in the trace_dropped metadata instead of silently lost.
	MaxEvents int
}

// NewTracer returns a tracer whose host clock starts now.
func NewTracer() *Tracer { return &Tracer{start: time.Now()} }

// Enabled reports whether spans will be recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Now returns the host-lane timestamp (µs since the tracer started).
func (t *Tracer) Now() float64 {
	if t == nil {
		return 0
	}
	return float64(time.Since(t.start)) / float64(time.Microsecond)
}

func (t *Tracer) add(ev traceEvent) {
	t.mu.Lock()
	max := t.MaxEvents
	if max == 0 {
		max = 1 << 20
	}
	if len(t.events) >= max && ev.Ph != "M" {
		t.dropped++
		t.mu.Unlock()
		return
	}
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Span records a complete span on (pid, tid) with explicit timestamps in
// that pid's time domain (µs for host lanes, cycles for device lanes).
func (t *Tracer) Span(pid, tid int, name string, ts, dur float64, args map[string]any) {
	if t == nil {
		return
	}
	t.add(traceEvent{Name: name, Ph: "X", Ts: ts, Dur: dur, Pid: pid, Tid: tid, Args: args})
}

// HostSpan times fn on a host lane and records it.
func (t *Tracer) HostSpan(tid int, name string, fn func()) {
	if t == nil {
		fn()
		return
	}
	ts := t.Now()
	fn()
	t.Span(PidHost, tid, name, ts, t.Now()-ts, nil)
}

// Counter records a counter sample ("C" phase) on a lane.
func (t *Tracer) Counter(pid, tid int, name string, ts float64, values map[string]any) {
	if t == nil {
		return
	}
	t.add(traceEvent{Name: name, Ph: "C", Ts: ts, Pid: pid, Tid: tid, Args: values})
}

// NameProcess attaches a display name to a pid.
func (t *Tracer) NameProcess(pid int, name string) {
	if t == nil {
		return
	}
	t.add(traceEvent{Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": name}})
}

// NameThread attaches a display name to a (pid, tid) lane.
func (t *Tracer) NameThread(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.add(traceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name}})
}

// Dropped returns how many spans the cap discarded.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// traceFile is the JSON object format ({"traceEvents": [...]}), which both
// Perfetto and chrome://tracing accept and which leaves room for metadata.
type traceFile struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Metadata        map[string]any `json:"otherData,omitempty"`
}

// WriteJSON serializes the trace. Events are sorted (metadata first, then
// by pid, tid, ts, name) so the bytes are a deterministic function of the
// recorded spans regardless of goroutine interleaving.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := w.Write([]byte(`{"traceEvents":[],"displayTimeUnit":"ms"}`))
		return err
	}
	t.mu.Lock()
	events := make([]traceEvent, len(t.events))
	copy(events, t.events)
	dropped := t.dropped
	t.mu.Unlock()
	sort.SliceStable(events, func(i, j int) bool {
		a, b := &events[i], &events[j]
		am, bm := a.Ph == "M", b.Ph == "M"
		if am != bm {
			return am
		}
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		return a.Name < b.Name
	})
	f := traceFile{TraceEvents: events, DisplayTimeUnit: "ms"}
	if dropped > 0 {
		f.Metadata = map[string]any{"trace_dropped": dropped}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&f)
}
