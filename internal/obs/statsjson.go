package obs

import (
	"encoding/json"
	"io"
)

// StatsSchema identifies the -stats-json output format. Bump on any field
// reorder or rename; downstream scripts key on it.
const StatsSchema = "sassi-stats/1"

// Stats is the machine-readable run summary emitted by -stats-json.
// Field order is fixed by this struct declaration and the metrics map
// marshals with sorted keys (encoding/json sorts map[string] keys), so the
// serialized bytes are deterministic — the golden-file test in cmd/sassi
// pins the schema.
type Stats struct {
	Schema   string `json:"schema"`
	Workload string `json:"workload,omitempty"`
	Dataset  string `json:"dataset,omitempty"`
	GPU      string `json:"gpu,omitempty"`
	Tool     string `json:"tool,omitempty"`

	Launches     int    `json:"launches"`
	KernelCycles uint64 `json:"kernel_cycles"`
	WarpInstrs   uint64 `json:"warp_instrs"`
	HandlerCalls uint64 `json:"handler_calls"`
	// ScoreboardStalls is the total cycles warps spent stalled on register
	// hazards (KernelStats.ScoreboardStalls summed over launches).
	ScoreboardStalls uint64 `json:"scoreboard_stalls"`
	Verified         bool   `json:"verified"`

	// Metrics is the registry flattened to name → value (sorted on
	// marshal). Wall-clock quantities are deliberately excluded so the
	// output is reproducible run to run.
	Metrics map[string]uint64 `json:"metrics"`
}

// NewStats returns a Stats with the schema tag set and the registry
// flattened in (nil registry gives an empty metrics object).
func NewStats(reg *Registry) *Stats {
	m := reg.Flat("sm")
	if m == nil {
		m = map[string]uint64{}
	}
	return &Stats{Schema: StatsSchema, Metrics: m}
}

// WriteJSON writes the stats as indented JSON with a trailing newline.
func (s *Stats) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
