package sim

import (
	"sync"

	"sassi/internal/mem"
)

// The predecoded engine arena-allocates per-launch state. A launch's
// dominant allocations are per-thread: the Thread struct, its register
// file, and its local-memory descriptor. The arena carves all three for a
// whole CTA out of reusable slabs; when the CTA retires (after the
// CTARetire observer has run) its slab returns to the arena, and at launch
// end the arena itself returns to a package-level pool shared by all
// devices. Between reuses only the carved prefix is zeroed — a memclr, not
// an allocation — so steady-state launches allocate no per-thread memory.
//
// Warp and CTA structs are deliberately NOT pooled: instrumentation
// handlers key per-warp state by *Warp (e.g. the CFI shadow stacks, reset
// only explicitly), so recycling those pointers across launches would
// alias logically distinct warps. The slab contents are private to the
// simulator; observers that want thread state past CTA retirement must
// copy it (the difftest collector does).
var arenaPool = sync.Pool{New: func() any { return &launchArena{} }}

// launchArena is the per-launch slab pool. getSlab/putSlab are called once
// per CTA build/retire — coarse enough that a single mutex costs nothing,
// and it keeps the arena safe when SM goroutines build CTAs concurrently.
type launchArena struct {
	mu    sync.Mutex
	slabs []*ctaSlab
}

// ctaSlab backs the threads of one CTA. The backing arrays are carved by
// appending within capacity; capacity is reserved up front for the whole
// CTA so carving never reallocates (earlier *Thread pointers must stay
// valid).
type ctaSlab struct {
	threads []Thread
	regs    []uint32
	locals  []mem.Local
}

// getSlab returns a slab with capacity for nThreads threads of numRegs
// registers each, reusing a pooled slab when one is large enough.
func (a *launchArena) getSlab(nThreads, numRegs int) *ctaSlab {
	a.mu.Lock()
	for i := len(a.slabs) - 1; i >= 0; i-- {
		s := a.slabs[i]
		if cap(s.threads) >= nThreads && cap(s.regs) >= nThreads*numRegs {
			a.slabs[i] = a.slabs[len(a.slabs)-1]
			a.slabs = a.slabs[:len(a.slabs)-1]
			a.mu.Unlock()
			return s
		}
	}
	a.mu.Unlock()
	return &ctaSlab{
		threads: make([]Thread, 0, nThreads),
		regs:    make([]uint32, 0, nThreads*numRegs),
		locals:  make([]mem.Local, 0, nThreads),
	}
}

// putSlab returns a retired CTA's slab for reuse. Contents are zeroed at
// the next carve, not here, so error paths that never reuse pay nothing.
func (a *launchArena) putSlab(s *ctaSlab) {
	s.threads = s.threads[:0]
	s.regs = s.regs[:0]
	s.locals = s.locals[:0]
	a.mu.Lock()
	a.slabs = append(a.slabs, s)
	a.mu.Unlock()
}

// newThread carves one thread from the slab: newThread(numRegs,
// localBytes) with slab-backed storage. The local-memory descriptor is
// lazy — its data slice is only materialized on first write.
func (s *ctaSlab) newThread(numRegs, localBytes int) *Thread {
	s.threads = append(s.threads, Thread{})
	t := &s.threads[len(s.threads)-1]
	n := len(s.regs)
	s.regs = s.regs[:n+numRegs]
	regs := s.regs[n : n+numRegs : n+numRegs]
	clear(regs)
	s.locals = append(s.locals, mem.Local{})
	l := &s.locals[len(s.locals)-1]
	l.Reset(localBytes)
	t.Regs = regs
	t.Preds = 1 << 7 // PT
	t.Local = l
	t.Regs[1] = uint32(localBytes)
	return t
}
