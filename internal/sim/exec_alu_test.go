package sim_test

import (
	"math"
	"testing"

	"sassi/internal/sass"
)

// expectAll asserts all lanes produced the same expected values.
func expectAll(t *testing.T, got [][]uint32, want ...uint32) {
	t.Helper()
	for lane, regs := range got {
		for i, w := range want {
			if regs[i] != w {
				t.Fatalf("lane %d out[%d] = %#x, want %#x", lane, i, regs[i], w)
			}
		}
	}
}

func TestIADDBasic(t *testing.T) {
	h := &warpHarness{
		instrs: []sass.Instruction{
			movi(0, 7),
			alu(sass.OpIADD, sass.Mods{}, 1, sass.R(0), sass.Imm(5)),
			alu(sass.OpIADD, sass.Mods{NegB: true}, 2, sass.R(1), sass.R(0)),
			alu(sass.OpIADD, sass.Mods{}, 3, sass.R(0), sass.Imm(-10)),
		},
		outRegs: []uint8{1, 2, 3},
	}
	expectAll(t, h.run(t), 12, 5, uint32(0xFFFFFFFD))
}

func TestIADDCarryChain(t *testing.T) {
	// 64-bit add: (0xFFFFFFFF, 1) + (2, 0) = (1, 2).
	h := &warpHarness{
		instrs: []sass.Instruction{
			movi(0, int64(int32(-1))), // lo a
			movi(1, 1),                // hi a
			movi(2, 2),                // lo b
			movi(3, 0),                // hi b
			alu(sass.OpIADD, sass.Mods{SetCC: true}, 4, sass.R(0), sass.R(2)),
			alu(sass.OpIADD, sass.Mods{X: true}, 5, sass.R(1), sass.R(3)),
		},
		outRegs: []uint8{4, 5},
	}
	expectAll(t, h.run(t), 1, 2)
}

func TestIADDCCFlags(t *testing.T) {
	// Zero result sets Z; shuttle CC into a register via P2R.X.
	h := &warpHarness{
		instrs: []sass.Instruction{
			movi(0, 5),
			alu(sass.OpIADD, sass.Mods{SetCC: true, NegB: true}, 1, sass.R(0), sass.R(0)),
			alu(sass.OpP2R, sass.Mods{X: true}, 2, sass.R(sass.RZ), sass.Imm(0xf)),
		},
		outRegs: []uint8{1, 2},
	}
	got := h.run(t)
	// result 0: Z set, carry set (5 + (-5) wraps).
	if got[0][0] != 0 {
		t.Fatalf("result = %d", got[0][0])
	}
	cc := got[0][1]
	if cc&1 == 0 {
		t.Errorf("zero flag not set, cc=%#x", cc)
	}
	if cc&4 == 0 {
		t.Errorf("carry flag not set, cc=%#x", cc)
	}
}

func TestIMULIMAD(t *testing.T) {
	h := &warpHarness{
		instrs: []sass.Instruction{
			movi(0, 7),
			movi(1, 6),
			movi(2, 100),
			alu(sass.OpIMUL, sass.Mods{}, 3, sass.R(0), sass.R(1)),
			{Guard: sass.Always, Op: sass.OpIMAD,
				Dsts: []sass.Operand{sass.R(4)},
				Srcs: []sass.Operand{sass.R(0), sass.R(1), sass.R(2)}},
		},
		outRegs: []uint8{3, 4},
	}
	expectAll(t, h.run(t), 42, 142)
}

func TestISCADD(t *testing.T) {
	h := &warpHarness{
		instrs: []sass.Instruction{
			movi(0, 3),
			movi(1, 100),
			{Guard: sass.Always, Op: sass.OpISCADD,
				Dsts: []sass.Operand{sass.R(2)},
				Srcs: []sass.Operand{sass.R(0), sass.R(1), sass.Imm(4)}},
		},
		outRegs: []uint8{2},
	}
	expectAll(t, h.run(t), 3<<4+100)
}

func TestShifts(t *testing.T) {
	h := &warpHarness{
		instrs: []sass.Instruction{
			movi(0, int64(int32(-16))),
			alu(sass.OpSHL, sass.Mods{}, 1, sass.R(0), sass.Imm(2)),
			alu(sass.OpSHR, sass.Mods{Unsigned: true}, 2, sass.R(0), sass.Imm(2)),
			alu(sass.OpSHR, sass.Mods{}, 3, sass.R(0), sass.Imm(2)),  // arithmetic
			alu(sass.OpSHL, sass.Mods{}, 4, sass.R(0), sass.Imm(35)), // over-shift -> 0
			alu(sass.OpSHR, sass.Mods{}, 5, sass.R(0), sass.Imm(40)), // arithmetic clamp
		},
		outRegs: []uint8{1, 2, 3, 4, 5},
	}
	expectAll(t, h.run(t),
		uint32(0xFFFFFFC0), uint32(0xFFFFFFF0)>>2, uint32(0xFFFFFFFC), 0, 0xFFFFFFFF)
}

func TestLOPVariants(t *testing.T) {
	h := &warpHarness{
		instrs: []sass.Instruction{
			movi(0, 0b1100),
			movi(1, 0b1010),
			alu(sass.OpLOP, sass.Mods{Logic: sass.LogicAND}, 2, sass.R(0), sass.R(1)),
			alu(sass.OpLOP, sass.Mods{Logic: sass.LogicOR}, 3, sass.R(0), sass.R(1)),
			alu(sass.OpLOP, sass.Mods{Logic: sass.LogicXOR}, 4, sass.R(0), sass.R(1)),
			alu(sass.OpLOP, sass.Mods{Logic: sass.LogicPASS}, 5, sass.R(0), sass.R(1)),
			alu(sass.OpLOP, sass.Mods{Logic: sass.LogicNOT}, 6, sass.R(sass.RZ), sass.R(1)),
		},
		outRegs: []uint8{2, 3, 4, 5, 6},
	}
	expectAll(t, h.run(t), 0b1000, 0b1110, 0b0110, 0b1010, ^uint32(0b1010))
}

func TestBitfieldOps(t *testing.T) {
	h := &warpHarness{
		instrs: []sass.Instruction{
			movi(0, 0x12345678),
			// BFE pos=8 len=8 -> 0x56.
			alu(sass.OpBFE, sass.Mods{Unsigned: true}, 1, sass.R(0), sass.Imm(8|8<<8)),
			// Signed BFE of 0xF8 at pos 0 len 8 -> sign extended.
			movi(2, 0xF8),
			alu(sass.OpBFE, sass.Mods{}, 3, sass.R(2), sass.Imm(0|8<<8)),
			// BFI insert 0xAB into 0 at pos 4 len 8.
			movi(4, 0xAB),
			{Guard: sass.Always, Op: sass.OpBFI,
				Dsts: []sass.Operand{sass.R(5)},
				Srcs: []sass.Operand{sass.R(4), sass.Imm(4 | 8<<8), sass.R(sass.RZ)}},
			// FLO and POPC.
			alu(sass.OpFLO, sass.Mods{}, 6, sass.R(0)),
			alu(sass.OpPOPC, sass.Mods{}, 7, sass.R(0)),
			alu(sass.OpFLO, sass.Mods{}, 8, sass.R(sass.RZ)),
		},
		outRegs: []uint8{1, 3, 5, 6, 7, 8},
	}
	expectAll(t, h.run(t), 0x56, uint32(0xFFFFFFF8), 0xAB0, 28, 13, 0xFFFFFFFF)
}

func TestMinMax(t *testing.T) {
	h := &warpHarness{
		instrs: []sass.Instruction{
			movi(0, int64(int32(-5))),
			movi(1, 3),
			// signed min/max
			{Guard: sass.Always, Op: sass.OpIMNMX,
				Dsts: []sass.Operand{sass.R(2)},
				Srcs: []sass.Operand{sass.R(0), sass.R(1), sass.P(sass.PT)}},
			{Guard: sass.Always, Op: sass.OpIMNMX,
				Dsts: []sass.Operand{sass.R(3)},
				Srcs: []sass.Operand{sass.R(0), sass.R(1), sass.NotP(sass.PT)}},
			// unsigned: -5 is huge
			{Guard: sass.Always, Op: sass.OpIMNMX, Mods: sass.Mods{Unsigned: true},
				Dsts: []sass.Operand{sass.R(4)},
				Srcs: []sass.Operand{sass.R(0), sass.R(1), sass.P(sass.PT)}},
		},
		outRegs: []uint8{2, 3, 4},
	}
	expectAll(t, h.run(t), uint32(0xFFFFFFFB), 3, 3)
}

func TestSETPAndSEL(t *testing.T) {
	h := &warpHarness{
		instrs: []sass.Instruction{
			tid(0),
			setp(0, sass.CmpLT, true, sass.R(0), sass.Imm(16)),
			movi(1, 111),
			movi(2, 222),
			{Guard: sass.Always, Op: sass.OpSEL,
				Dsts: []sass.Operand{sass.R(3)},
				Srcs: []sass.Operand{sass.R(1), sass.R(2), sass.P(0)}},
		},
		outRegs: []uint8{3},
	}
	got := h.run(t)
	for lane := 0; lane < 32; lane++ {
		want := uint32(222)
		if lane < 16 {
			want = 111
		}
		if got[lane][0] != want {
			t.Fatalf("lane %d = %d, want %d", lane, got[lane][0], want)
		}
	}
}

func TestSETPAllComparisons(t *testing.T) {
	cmps := []struct {
		cmp  sass.CmpOp
		a, b int64
		want bool
	}{
		{sass.CmpLT, -1, 1, true},
		{sass.CmpLE, 1, 1, true},
		{sass.CmpGT, 2, 1, true},
		{sass.CmpGE, 1, 2, false},
		{sass.CmpEQ, 3, 3, true},
		{sass.CmpNE, 3, 3, false},
	}
	for _, c := range cmps {
		h := &warpHarness{
			instrs: []sass.Instruction{
				movi(0, c.a),
				movi(1, c.b),
				{Guard: sass.Always, Op: sass.OpISETP,
					Mods: sass.Mods{Cmp: c.cmp, Logic: sass.LogicAND},
					Dsts: []sass.Operand{sass.P(0)},
					Srcs: []sass.Operand{sass.R(0), sass.R(1), sass.P(sass.PT)}},
				alu(sass.OpP2R, sass.Mods{}, 2, sass.R(sass.RZ), sass.Imm(1)),
			},
			outRegs: []uint8{2},
			threads: 1,
		}
		got := h.run(t)
		want := uint32(0)
		if c.want {
			want = 1
		}
		if got[0][0] != want {
			t.Errorf("cmp %v %d %d: P0 = %d, want %d", c.cmp, c.a, c.b, got[0][0], want)
		}
	}
}

func TestSETPPairDest(t *testing.T) {
	// ISETP with two predicate outputs: Pq = complement.
	h := &warpHarness{
		instrs: []sass.Instruction{
			movi(0, 5),
			{Guard: sass.Always, Op: sass.OpISETP,
				Mods: sass.Mods{Cmp: sass.CmpLT, Logic: sass.LogicAND},
				Dsts: []sass.Operand{sass.P(0), sass.P(1)},
				Srcs: []sass.Operand{sass.R(0), sass.Imm(10), sass.P(sass.PT)}},
			alu(sass.OpP2R, sass.Mods{}, 1, sass.R(sass.RZ), sass.Imm(3)),
		},
		outRegs: []uint8{1},
		threads: 1,
	}
	if got := h.run(t); got[0][0] != 0b01 {
		t.Errorf("pred pair = %#b, want 0b01", got[0][0])
	}
}

func TestPSETPAndR2P(t *testing.T) {
	h := &warpHarness{
		instrs: []sass.Instruction{
			movi(0, 0b101),
			alu(sass.OpR2P, sass.Mods{}, sass.RZ, sass.R(0), sass.Imm(0x7f)),
			// P3 = P0 && P2 (both set) -> true
			{Guard: sass.Always, Op: sass.OpPSETP, Mods: sass.Mods{Logic: sass.LogicAND},
				Dsts: []sass.Operand{sass.P(3)},
				Srcs: []sass.Operand{sass.P(0), sass.P(2)}},
			// P4 = P1 || P0 -> true
			{Guard: sass.Always, Op: sass.OpPSETP, Mods: sass.Mods{Logic: sass.LogicOR},
				Dsts: []sass.Operand{sass.P(4)},
				Srcs: []sass.Operand{sass.P(1), sass.P(0)}},
			alu(sass.OpP2R, sass.Mods{}, 1, sass.R(sass.RZ), sass.Imm(0x7f)),
		},
		outRegs: []uint8{1},
		threads: 1,
	}
	got := h.run(t)
	want := uint32(0b101 | 1<<3 | 1<<4)
	if got[0][0] != want {
		t.Errorf("preds = %#b, want %#b", got[0][0], want)
	}
}

func fbits(f float32) int64 { return int64(int32(math.Float32bits(f))) }

func TestFloatOps(t *testing.T) {
	h := &warpHarness{
		instrs: []sass.Instruction{
			movi(0, fbits(1.5)),
			movi(1, fbits(2.25)),
			alu(sass.OpFADD, sass.Mods{}, 2, sass.R(0), sass.R(1)),
			alu(sass.OpFMUL, sass.Mods{}, 3, sass.R(0), sass.R(1)),
			alu(sass.OpFADD, sass.Mods{NegB: true}, 4, sass.R(0), sass.R(1)),
			{Guard: sass.Always, Op: sass.OpFFMA,
				Dsts: []sass.Operand{sass.R(5)},
				Srcs: []sass.Operand{sass.R(0), sass.R(1), sass.R(0)}},
		},
		outRegs: []uint8{2, 3, 4, 5},
	}
	expectAll(t, h.run(t),
		math.Float32bits(3.75), math.Float32bits(3.375),
		math.Float32bits(-0.75), math.Float32bits(1.5*2.25+1.5))
}

func TestMUFU(t *testing.T) {
	h := &warpHarness{
		instrs: []sass.Instruction{
			movi(0, fbits(4.0)),
			alu(sass.OpMUFU, sass.Mods{Mufu: sass.MufuRCP}, 1, sass.R(0)),
			alu(sass.OpMUFU, sass.Mods{Mufu: sass.MufuSQRT}, 2, sass.R(0)),
			alu(sass.OpMUFU, sass.Mods{Mufu: sass.MufuRSQ}, 3, sass.R(0)),
			alu(sass.OpMUFU, sass.Mods{Mufu: sass.MufuEX2}, 4, sass.R(0)),
			alu(sass.OpMUFU, sass.Mods{Mufu: sass.MufuLG2}, 5, sass.R(0)),
		},
		outRegs: []uint8{1, 2, 3, 4, 5},
	}
	expectAll(t, h.run(t),
		math.Float32bits(0.25), math.Float32bits(2), math.Float32bits(0.5),
		math.Float32bits(16), math.Float32bits(2))
}

func TestConversions(t *testing.T) {
	h := &warpHarness{
		instrs: []sass.Instruction{
			movi(0, fbits(-3.7)),
			alu(sass.OpF2I, sass.Mods{}, 1, sass.R(0)), // trunc toward zero
			movi(2, int64(int32(-7))),
			alu(sass.OpI2F, sass.Mods{}, 3, sass.R(2)),
			alu(sass.OpI2F, sass.Mods{Unsigned: true}, 4, sass.R(2)),
			movi(5, fbits(3e10)), // overflows int32 -> saturate
			alu(sass.OpF2I, sass.Mods{}, 6, sass.R(5)),
		},
		outRegs: []uint8{1, 3, 4, 6},
	}
	expectAll(t, h.run(t),
		uint32(0xFFFFFFFD), math.Float32bits(-7),
		math.Float32bits(float32(uint32(0xFFFFFFF9))), uint32(math.MaxInt32))
}

func TestFSETPAndFMNMX(t *testing.T) {
	h := &warpHarness{
		instrs: []sass.Instruction{
			movi(0, fbits(1.0)),
			movi(1, fbits(2.0)),
			{Guard: sass.Always, Op: sass.OpFSETP,
				Mods: sass.Mods{Cmp: sass.CmpLT, Logic: sass.LogicAND},
				Dsts: []sass.Operand{sass.P(0)},
				Srcs: []sass.Operand{sass.R(0), sass.R(1), sass.P(sass.PT)}},
			alu(sass.OpP2R, sass.Mods{}, 2, sass.R(sass.RZ), sass.Imm(1)),
			{Guard: sass.Always, Op: sass.OpFMNMX,
				Dsts: []sass.Operand{sass.R(3)},
				Srcs: []sass.Operand{sass.R(0), sass.R(1), sass.P(sass.PT)}},
			{Guard: sass.Always, Op: sass.OpFMNMX,
				Dsts: []sass.Operand{sass.R(4)},
				Srcs: []sass.Operand{sass.R(0), sass.R(1), sass.NotP(sass.PT)}},
		},
		outRegs: []uint8{2, 3, 4},
	}
	expectAll(t, h.run(t), 1, math.Float32bits(1), math.Float32bits(2))
}

func TestPredicationMasksExecution(t *testing.T) {
	// Odd lanes skip the write; R1 keeps its original value there.
	h := &warpHarness{
		instrs: []sass.Instruction{
			tid(0),
			movi(1, 99),
			alu(sass.OpLOP, sass.Mods{Logic: sass.LogicAND}, 2, sass.R(0), sass.Imm(1)),
			setp(0, sass.CmpEQ, true, sass.R(2), sass.Imm(0)),
			guarded(movi(1, 55), 0, false),
		},
		outRegs: []uint8{1},
	}
	got := h.run(t)
	for lane := 0; lane < 32; lane++ {
		want := uint32(99)
		if lane%2 == 0 {
			want = 55
		}
		if got[lane][0] != want {
			t.Fatalf("lane %d = %d, want %d", lane, got[lane][0], want)
		}
	}
}

func TestRZIsImmutableZero(t *testing.T) {
	h := &warpHarness{
		instrs: []sass.Instruction{
			movi(sass.RZ, 77), // dropped
			alu(sass.OpIADD, sass.Mods{}, 0, sass.R(sass.RZ), sass.Imm(5)),
		},
		outRegs: []uint8{0},
	}
	expectAll(t, h.run(t), 5)
}

func TestSpecialRegisters(t *testing.T) {
	h := &warpHarness{
		instrs: []sass.Instruction{
			sass.New(sass.OpS2R, []sass.Operand{sass.R(0)}, []sass.Operand{sass.SReg(sass.SRLaneID)}),
			sass.New(sass.OpS2R, []sass.Operand{sass.R(1)}, []sass.Operand{sass.SReg(sass.SRNTidX)}),
			sass.New(sass.OpS2R, []sass.Operand{sass.R(2)}, []sass.Operand{sass.SReg(sass.SRCtaidX)}),
			sass.New(sass.OpS2R, []sass.Operand{sass.R(3)}, []sass.Operand{sass.SReg(sass.SRNCtaidX)}),
		},
		outRegs: []uint8{0, 1, 2, 3},
	}
	got := h.run(t)
	for lane := 0; lane < 32; lane++ {
		if got[lane][0] != uint32(lane) {
			t.Fatalf("laneid = %d, want %d", got[lane][0], lane)
		}
		if got[lane][1] != 32 || got[lane][2] != 0 || got[lane][3] != 1 {
			t.Fatalf("ntid/ctaid/nctaid = %v", got[lane][1:])
		}
	}
}
