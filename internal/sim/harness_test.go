package sim_test

import (
	"testing"

	"sassi/internal/sass"
	"sassi/internal/sim"
)

// warpHarness executes a hand-assembled instruction sequence on a single
// 32-lane warp and returns the chosen registers of every lane, observed by
// storing them to global memory in an epilogue. The harness reserves
// R40-R47 for its own prologue/epilogue; test code may use R0-R39.
type warpHarness struct {
	instrs  []sass.Instruction
	labels  map[string]int
	outRegs []uint8
	threads int // defaults to 32
}

const (
	hOut = 40 // R40/R41: output pointer
	hTid = 42
	hTmp = 43
)

func (h *warpHarness) run(t *testing.T) [][]uint32 {
	t.Helper()
	if h.threads == 0 {
		h.threads = 32
	}
	k := &sass.Kernel{Name: "t", Labels: map[string]int{}}
	outOff := k.AddParam("out", 8)
	for name, idx := range h.labels {
		k.Labels[name] = idx
	}
	k.Instrs = append(k.Instrs, h.instrs...)
	epiStart := len(k.Instrs)
	nout := len(h.outRegs)
	epi := []sass.Instruction{
		sass.New(sass.OpMOV, []sass.Operand{sass.R(hOut)}, []sass.Operand{sass.CMem(0, int64(outOff))}),
		sass.New(sass.OpMOV, []sass.Operand{sass.R(hOut + 1)}, []sass.Operand{sass.CMem(0, int64(outOff+4))}),
		sass.New(sass.OpS2R, []sass.Operand{sass.R(hTid)}, []sass.Operand{sass.SReg(sass.SRTidX)}),
		sass.New(sass.OpMOV32, []sass.Operand{sass.R(hTmp)}, []sass.Operand{sass.Imm(int64(4 * nout))}),
		sass.New(sass.OpIMUL, []sass.Operand{sass.R(hTid)}, []sass.Operand{sass.R(hTid), sass.R(hTmp)}),
		{Guard: sass.Always, Op: sass.OpIADD, Mods: sass.Mods{SetCC: true},
			Dsts: []sass.Operand{sass.R(hOut)}, Srcs: []sass.Operand{sass.R(hOut), sass.R(hTid)}},
		{Guard: sass.Always, Op: sass.OpIADD, Mods: sass.Mods{X: true},
			Dsts: []sass.Operand{sass.R(hOut + 1)}, Srcs: []sass.Operand{sass.R(hOut + 1), sass.R(sass.RZ)}},
	}
	for i, r := range h.outRegs {
		epi = append(epi, sass.Instruction{Guard: sass.Always, Op: sass.OpSTG,
			Mods: sass.Mods{E: true},
			Srcs: []sass.Operand{sass.Mem(hOut, int64(4*i)), sass.R(r)}})
	}
	epi = append(epi, sass.New(sass.OpEXIT, nil, nil))
	k.Instrs = append(k.Instrs, epi...)
	// "exit"-style label convention: tests may branch to the epilogue.
	if _, ok := k.Labels["epilogue"]; !ok {
		k.Labels["epilogue"] = epiStart
	}
	if err := k.ResolveLabels(); err != nil {
		t.Fatal(err)
	}
	k.NumRegs = 48
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	prog := sass.NewProgram()
	prog.AddKernel(k)

	dev := sim.NewDevice(sim.MiniGPU())
	out := dev.Alloc(uint64(4*nout*h.threads), "out")
	_, err := dev.Launch(prog, "t", sim.LaunchParams{
		Grid: sim.D1(1), Block: sim.D1(h.threads),
		Args: []uint64{out},
	})
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	res := make([][]uint32, h.threads)
	for lane := 0; lane < h.threads; lane++ {
		res[lane] = make([]uint32, nout)
		for i := 0; i < nout; i++ {
			v, err := dev.Global.Read32(out + uint64(4*(lane*nout+i)))
			if err != nil {
				t.Fatal(err)
			}
			res[lane][i] = v
		}
	}
	return res
}

// runErr runs the harness expecting a launch failure and returns it.
func (h *warpHarness) runErr(t *testing.T, cfg sim.Config) error {
	t.Helper()
	if h.threads == 0 {
		h.threads = 32
	}
	k := &sass.Kernel{Name: "t", Labels: map[string]int{}, NumRegs: 48}
	k.AddParam("out", 8)
	for name, idx := range h.labels {
		k.Labels[name] = idx
	}
	k.Instrs = append(k.Instrs, h.instrs...)
	k.Instrs = append(k.Instrs, sass.New(sass.OpEXIT, nil, nil))
	if err := k.ResolveLabels(); err != nil {
		t.Fatal(err)
	}
	prog := sass.NewProgram()
	prog.AddKernel(k)
	dev := sim.NewDevice(cfg)
	out := dev.Alloc(16, "out")
	_, err := dev.Launch(prog, "t", sim.LaunchParams{
		Grid: sim.D1(1), Block: sim.D1(h.threads), Args: []uint64{out},
	})
	return err
}

// Assembly shorthands.

func movi(r uint8, v int64) sass.Instruction {
	return sass.New(sass.OpMOV32, []sass.Operand{sass.R(r)}, []sass.Operand{sass.Imm(v)})
}

func tid(r uint8) sass.Instruction {
	return sass.New(sass.OpS2R, []sass.Operand{sass.R(r)}, []sass.Operand{sass.SReg(sass.SRTidX)})
}

func alu(op sass.Opcode, mods sass.Mods, d uint8, srcs ...sass.Operand) sass.Instruction {
	return sass.Instruction{Guard: sass.Always, Op: op, Mods: mods,
		Dsts: []sass.Operand{sass.R(d)}, Srcs: srcs}
}

func setp(p uint8, cmp sass.CmpOp, unsigned bool, a, b sass.Operand) sass.Instruction {
	return sass.Instruction{Guard: sass.Always, Op: sass.OpISETP,
		Mods: sass.Mods{Cmp: cmp, Unsigned: unsigned, Logic: sass.LogicAND},
		Dsts: []sass.Operand{sass.P(p)},
		Srcs: []sass.Operand{a, b, sass.P(sass.PT)}}
}

func guarded(in sass.Instruction, p uint8, neg bool) sass.Instruction {
	in.Guard = sass.PredGuard{Reg: p, Neg: neg}
	return in
}

func bra(label string) sass.Instruction {
	return sass.New(sass.OpBRA, nil, []sass.Operand{sass.Label(label)})
}

func ssy(label string) sass.Instruction {
	return sass.New(sass.OpSSY, nil, []sass.Operand{sass.Label(label)})
}

func sync() sass.Instruction { return sass.New(sass.OpSYNC, nil, nil) }
