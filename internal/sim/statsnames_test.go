package sim

// The KernelStats observability audit: every counter KernelStats carries
// must be exported through both the sassi-stats JSON metrics map (the
// flattened registry) and the Prometheus endpoint, and KernelStatsMetrics
// must be kept in lockstep with the struct. Adding a KernelStats field
// without deciding its mapping fails TestKernelStatsMetricsComplete;
// mapping it to a metric publishMetrics never publishes fails
// TestKernelStatsMetricsLive.

import (
	"reflect"
	"strings"
	"testing"

	"sassi/internal/obs"
)

// TestKernelStatsMetricsComplete checks the mapping and the struct agree
// field-for-field, in both directions.
func TestKernelStatsMetricsComplete(t *testing.T) {
	m := KernelStatsMetrics()
	typ := reflect.TypeOf(KernelStats{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if _, ok := m[name]; !ok {
			t.Errorf("KernelStats.%s has no KernelStatsMetrics entry: map it to an obs metric name, or to \"\" with a reason", name)
		}
	}
	for name := range m {
		if _, ok := typ.FieldByName(name); !ok {
			t.Errorf("KernelStatsMetrics maps %q, which is not a KernelStats field", name)
		}
	}
}

// TestKernelStatsMetricsLive launches a kernel against a live registry and
// checks every mapped metric actually materializes in the flattened
// registry (the stats-JSON shape) and the Prometheus rendering.
func TestKernelStatsMetricsLive(t *testing.T) {
	prog := sampKernel(t)
	dev := NewDevice(MiniGPU())
	reg := obs.NewRegistry()
	dev.Metrics = reg
	buf := dev.Alloc(4*64, "out")
	if _, err := dev.Launch(prog, "gid", LaunchParams{
		Grid: D1(2), Block: D1(32), Args: []uint64{buf},
	}); err != nil {
		t.Fatal(err)
	}
	flat := reg.Flat("sm")
	var prom strings.Builder
	obs.WritePrometheus(&prom, reg)
	promText := prom.String()
	for field, metric := range KernelStatsMetrics() {
		if metric == "" {
			continue
		}
		if _, ok := flat[metric]; !ok {
			t.Errorf("KernelStats.%s maps to %q, which the launch never published to the registry", field, metric)
		}
		promID := strings.ReplaceAll(metric, ".", "_")
		if !strings.Contains(promText, promID) {
			t.Errorf("KernelStats.%s metric %q (%s) missing from the Prometheus rendering", field, metric, promID)
		}
	}
}
