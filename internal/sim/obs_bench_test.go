package sim

// Allocation guard for the observability layer: with Metrics and Trace nil
// (the default), the warp-issue hot path must not allocate at all — issue
// accounting lives in plain smShard fields and the registry is only
// consulted once per launch in publishMetrics. BenchmarkObsOverhead is the
// CI smoke benchmark; TestWarpIssueZeroAlloc is the hard guard that fails
// the suite if an allocation sneaks into step().

import (
	"testing"

	"sassi/internal/mem"
	"sassi/internal/obs"
	"sassi/internal/obs/pcsamp"
	"sassi/internal/sass"
)

// benchWarp builds a minimal engine around a two-instruction uniform loop
// (IADD R0,R0,R0; BRA loop) and returns a stepper that executes one warp
// instruction per call, with the watchdog held off.
func benchWarp(tb testing.TB, reg *obs.Registry, tr *obs.Tracer, samp *pcsamp.Sampler) func() {
	tb.Helper()
	k := &sass.Kernel{Name: "spin", NumRegs: 16, Labels: map[string]int{"loop": 0}}
	k.Instrs = []sass.Instruction{
		sass.New(sass.OpIADD, []sass.Operand{sass.R(0)}, []sass.Operand{sass.R(0), sass.R(0)}),
		sass.New(sass.OpBRA, nil, []sass.Operand{sass.Label("loop")}),
	}
	if err := k.ResolveLabels(); err != nil {
		tb.Fatal(err)
	}
	prog := sass.NewProgram()
	prog.AddKernel(k)

	dev := NewDevice(MiniGPU())
	dev.Metrics = reg
	dev.Trace = tr
	e := &engine{dev: dev, prog: prog, k: k}
	e.stats = &KernelStats{Kernel: k.Name, SMCycles: make([]uint64, dev.Cfg.NumSMs)}
	e.sms = make([]smShard, dev.Cfg.NumSMs)
	for i := range e.sms {
		e.sms[i].hier = mem.Hierarchy{
			L1: dev.L1s[i], L2: dev.L2s[i], DRAM: dev.DRAMs[i],
			L1Latency: dev.Cfg.L1Latency, L2Latency: dev.Cfg.L2Latency,
		}
	}
	e.ntid = [3]uint32{32, 1, 1}
	e.nctaid = [3]uint32{1, 1, 1}
	if samp != nil {
		e.attachSampler(samp, 32)
	}
	cta := e.buildCTA(0, D1(1), D1(32), 16, 0, 0, 0)
	w := cta.Warps[0]
	return func() {
		if err := e.step(w); err != nil {
			tb.Fatal(err)
		}
		w.DynWarpInstrs = 0 // hold the watchdog off
	}
}

// TestWarpIssueZeroAlloc pins the zero-cost-when-off contract: stepping a
// warp with observability disabled performs zero heap allocations per
// instruction. It also checks the obs-enabled path, which is equally
// allocation-free per instruction because metrics publish per launch and
// spans are emitted only at kernel/handler boundaries.
func TestWarpIssueZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name string
		reg  *obs.Registry
		tr   *obs.Tracer
	}{
		{"disabled", nil, nil},
		{"enabled", obs.NewRegistry(), obs.NewTracer()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			step := benchWarp(t, tc.reg, tc.tr, nil)
			step() // warm up (first divergence-free BRA, etc.)
			if allocs := testing.AllocsPerRun(1000, func() { step() }); allocs != 0 {
				t.Errorf("warp issue with obs %s allocates %.1f times per instruction, want 0",
					tc.name, allocs)
			}
		})
	}
}

// BenchmarkObsOverhead measures the per-warp-instruction cost of the
// observability layer on the issue hot path. CI runs it as a smoke step;
// BENCH_obs.json records a reference run. Expect ~0 delta between the
// variants and 0 allocs/op on both.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("issue/disabled", func(b *testing.B) {
		step := benchWarp(b, nil, nil, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step()
		}
	})
	b.Run("issue/enabled", func(b *testing.B) {
		step := benchWarp(b, obs.NewRegistry(), obs.NewTracer(), nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step()
		}
	})
	// PC sampling at the default period: the acceptance bound is <=10%
	// over issue/disabled. (At the default cadence 1-in-100 issues record
	// a 64-byte ring write, so the expected delta is ~1%.)
	b.Run("issue/sampling", func(b *testing.B) {
		step := benchWarp(b, nil, nil, pcsamp.New(pcsamp.DefaultPeriod))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step()
		}
	})
	// Worst case: every issue cycle sampled.
	b.Run("issue/sampling-period1", func(b *testing.B) {
		step := benchWarp(b, nil, nil, pcsamp.New(1))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step()
		}
	})
	// End-to-end: a full small launch with and without a live registry,
	// capturing the per-launch publishMetrics cost in context.
	launch := func(b *testing.B, reg *obs.Registry, samp *pcsamp.Sampler, engine Engine) {
		k := &sass.Kernel{Name: "gid", NumRegs: 16, Labels: map[string]int{}}
		out := k.AddParam("out", 8)
		k.Instrs = []sass.Instruction{
			sass.New(sass.OpMOV, []sass.Operand{sass.R(2)}, []sass.Operand{sass.CMem(0, int64(out))}),
			sass.New(sass.OpMOV, []sass.Operand{sass.R(3)}, []sass.Operand{sass.CMem(0, int64(out+4))}),
			sass.New(sass.OpS2R, []sass.Operand{sass.R(0)}, []sass.Operand{sass.SReg(sass.SRTidX)}),
			{Guard: sass.Always, Op: sass.OpSTG, Mods: sass.Mods{E: true},
				Srcs: []sass.Operand{sass.Mem(2, 0), sass.R(0)}},
			sass.New(sass.OpEXIT, nil, nil),
		}
		if err := k.ResolveLabels(); err != nil {
			b.Fatal(err)
		}
		prog := sass.NewProgram()
		prog.AddKernel(k)
		cfg := MiniGPU()
		cfg.Engine = engine
		dev := NewDevice(cfg)
		dev.Metrics = reg
		dev.PCSamp = samp
		buf := dev.Alloc(4*64, "out")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dev.Launch(prog, "gid", LaunchParams{
				Grid: D1(2), Block: D1(32), Args: []uint64{buf},
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("launch/disabled", func(b *testing.B) { launch(b, nil, nil, EngineConcurrent) })
	b.Run("launch/enabled", func(b *testing.B) { launch(b, obs.NewRegistry(), nil, EngineConcurrent) })
	b.Run("launch/sampled", func(b *testing.B) { launch(b, nil, pcsamp.New(pcsamp.DefaultPeriod), EngineConcurrent) })
	// Predecoded engine: the per-launch predecode is cached per device and
	// CTA thread state comes from the pooled arena, so steady-state launches
	// allocate a small fraction of the interpreter's per-launch bytes.
	b.Run("launch/predecoded", func(b *testing.B) { launch(b, nil, nil, EnginePredecoded) })
}
