package sim

import (
	"sync"

	"sassi/internal/analysis"
	"sassi/internal/sass"
)

// The predecoded execution engine rewrites the interpreter's hot path
// without touching its semantics: at the first launch of a kernel on a
// device, the SASS is predecoded into a dense flat format — operand kinds
// resolved (RZ folded to zero, constant-bank offsets bounds-checked once,
// predicate guards pre-split), scoreboard slot lists precomputed, static
// issue costs and result latencies cached, straight-line instruction runs
// measured per basic block, and a per-instruction "provably uniform" bit
// derived from the affine value lattice (internal/analysis). Execution
// then dispatches on a small class enum with manual lane loops instead of
// per-operand switches and closure iterators, takes a uniform-warp fast
// path (execute the leader lane once, broadcast the result) when the
// lattice proved the instruction uniform, and falls back to the classic
// interpreter's execOp for control transfers, barriers, SASSI handler
// sites, and any operation without a specialized class — so instrumented
// semantics are untouched by construction.
//
// Everything observable — architectural state, KernelStats (including
// cycles and scoreboard stalls), obs metrics, PC samples — is bit-equal
// to the classic engines: stepPre replicates step's accounting exactly
// and warps still issue one instruction per round-robin sweep, because
// any cross-warp batching would reorder the per-SM memory access stream
// and change cache statistics. Whole runs execute back-to-back only when
// an SM has a single live warp and no pending CTAs, where no other warp
// can observe the interleaving.

// preClass selects a specialized execution path in stepPre. pcGeneric
// delegates to the interpreter's execOp.
type preClass uint8

const (
	pcGeneric preClass = iota
	pcMOV              // MOV/MOV32/S2R/F2F: dst = src0
	pcIADD             // IADD/IADD32 without .X/.CC
	pcIMUL
	pcIMAD
	pcISCADD
	pcSHL
	pcSHR
	pcLOP
	pcSEL
	pcISETP
	pcFSETP
	pcFADD
	pcFMUL
	pcFFMA
	pcIMNMX
	pcFMNMX
	pcMUFU  // special-function unit: RCP/RSQ/SQRT/SIN/COS/EX2/LG2
	pcMemG  // LD/ST/LDG/STG: generic/global access, batched when all-global
	pcMemS  // LDS/STS
	pcMemL  // LDL/STL
	pcIADDC // IADD with .CC and/or .X: the 64-bit carry chain
	pcPSETP // predicate logic
	pcBRA   // predicated branch with a label target
	pcSYNC  // reconvergence pop
)

// preSrcKind is a resolved operand kind.
type preSrcKind uint8

const (
	psZero preSrcKind = iota // RZ or absent operand
	psReg
	psImm
	psCMem // constant-bank word, offset validated at predecode
	psSR   // special register (thread identity, clock, ...)
	psPred // predicate operand evaluated to 0/1 (srcU32 semantics)
)

// preSrc is one resolved scalar source operand.
type preSrc struct {
	kind preSrcKind
	reg  uint8 // psReg: GPR; psPred: predicate register
	neg  bool  // psPred
	sr   sass.SpecialReg
	imm  uint32 // psImm
	off  int32  // psCMem byte offset
}

// preInstr flag bits.
const (
	pfGuardAlways = 1 << iota // no guard predicate to evaluate
	pfGuardNeg                // guard is negated
	pfUniform                 // lattice-proven uniform and in a broadcast-safe class
	pfInjected                // SASSI-injected instruction
	pfStraight                // always advances PC+1 and cannot block the warp
	pfSetCC                   // pcIADDC: writes the condition code
	pfX                       // pcIADDC: consumes the carry bit
	pfFoldDyn                 // class's lane loops bump Thread.DynInstrs themselves
)

// preInstr is one predecoded instruction. Fields beyond the shared header
// are meaningful only for the classes that read them.
type preInstr struct {
	class    preClass
	flags    uint8
	guardReg uint8

	dst  uint8 // primary GPR destination (RZ when none)
	dstP uint8 // primary predicate destination (PT when none)
	dstQ uint8 // complement predicate destination (PT when none)

	srcs [3]preSrc

	staticCost uint8 // sass.IssueCost
	resLat     uint8 // sass.ResultLatency

	// Scoreboard slot lists, replicating Warp.scoreboard's consider and
	// retire sets exactly (GPR width expansion, guard and predicate
	// sources, CC on .X/.CC).
	sbSrc []uint16
	sbDst []uint16

	// Specialized-class modifiers.
	cmp      sass.CmpOp
	logic    sass.LogicOp
	mufu     sass.MufuFunc
	unsigned bool
	negB     bool

	// target is the branch destination PC (pcBRA).
	target int32

	// Memory classes.
	memBase  uint8 // address base register (RZ when absolute)
	memOff   int64
	memE     bool // 64-bit address in a register pair
	width    sass.Width
	nbytes   uint8
	store    bool
	forceG   bool  // LDG/STG: address must decode to global space
	dataReg  uint8 // store data base register
	memFault bool  // memory op needs per-lane space decode (generic LD/ST)

	// run is the number of consecutive straight-line instructions
	// starting here (including this one); 1 for anything that can branch,
	// block, or leave the kernel. The solo-warp block dispatcher executes
	// a whole run between liveness checks.
	run uint16
}

// preKernel is the predecoded form of one kernel, cached per device.
type preKernel struct {
	k   *sass.Kernel
	ins []preInstr
}

// preCache is the per-device predecode cache. Kernels are immutable after
// compilation, so the kernel pointer is a sound key; constant-bank
// offsets validated here stay valid because the bank's size is a function
// of the kernel's parameter layout, not of launch arguments.
type preCache struct {
	mu sync.Mutex
	m  map[*sass.Kernel]*preKernel
}

func (c *preCache) get(k *sass.Kernel, cbSize int) *preKernel {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[*sass.Kernel]*preKernel)
	}
	if pk, ok := c.m[k]; ok {
		return pk
	}
	pk := predecode(k, cbSize)
	c.m[k] = pk
	return pk
}

// straightLine reports whether the op always advances PC+1 and can
// neither block the warp nor redirect control: the run-membership test.
func straightLine(op sass.Opcode) bool {
	switch op {
	case sass.OpBRA, sass.OpSYNC, sass.OpBRK, sass.OpPBK, sass.OpEXIT,
		sass.OpCAL, sass.OpRET, sass.OpJCAL, sass.OpBAR:
		return false
	}
	return true
}

// broadcastSafe reports whether a specialized class reads only its
// declared sources (covered by the lattice's srcsUniform) and writes only
// its declared destinations, making leader-execute-and-broadcast legal.
// Memory classes are excluded: a load's data is not a function of its
// sources (another SM may store concurrently), and stores/atomics have
// per-lane side effects the memory model must see individually.
func broadcastSafe(c preClass) bool {
	return c >= pcMOV && c <= pcMUFU
}

// predecode lowers one kernel into the dense format. cbSize is the
// constant-bank size every launch of this kernel uses.
func predecode(k *sass.Kernel, cbSize int) *preKernel {
	pk := &preKernel{k: k, ins: make([]preInstr, len(k.Instrs))}

	// Per-instruction uniformity from the affine value lattice. An
	// analysis failure (malformed CFG) just loses the fast path; the
	// instructions still execute via their specialized or generic class.
	uni, _ := analysis.KernelUniformity(k)

	for i := range k.Instrs {
		in := &k.Instrs[i]
		p := &pk.ins[i]
		p.class = classify(in, cbSize)
		p.guardReg = in.Guard.Reg
		if in.Guard.IsAlways() {
			p.flags |= pfGuardAlways
		}
		if in.Guard.Neg {
			p.flags |= pfGuardNeg
		}
		if in.Injected {
			p.flags |= pfInjected
		}
		if straightLine(in.Op) {
			p.flags |= pfStraight
		}
		if uni != nil && uni[i].Uniform() && broadcastSafe(p.class) {
			p.flags |= pfUniform
		}
		if in.Mods.SetCC {
			p.flags |= pfSetCC
		}
		if in.Mods.X {
			p.flags |= pfX
		}
		// Classes whose execution loops walk every executing lane before
		// any fault can occur fold the per-lane DynInstrs increment into
		// that walk; stepPre then skips its own counting pass. The
		// shared/local classes keep the up-front pass: their loops fault
		// mid-warp, and the interpreter counts every lane first.
		if (p.class >= pcMOV && p.class <= pcMUFU) ||
			p.class == pcIADDC || p.class == pcPSETP || p.class == pcMemG {
			p.flags |= pfFoldDyn
		}
		p.staticCost = uint8(sass.IssueCost(in))
		p.resLat = uint8(sass.ResultLatency(in))
		p.fillScoreboard(in)
		p.fillOperands(in, cbSize)
	}

	// Straight-line runs: the length of the suffix of consecutive
	// pfStraight instructions starting at each PC.
	for i := len(pk.ins) - 1; i >= 0; i-- {
		p := &pk.ins[i]
		p.run = 1
		if p.flags&pfStraight != 0 && i+1 < len(pk.ins) &&
			pk.ins[i+1].flags&pfStraight != 0 && pk.ins[i+1].run < 1<<14 {
			p.run = pk.ins[i+1].run + 1
		}
	}
	return pk
}

// classify picks the specialized class for an instruction, or pcGeneric
// when any precondition fails (the generic path is always correct).
func classify(in *sass.Instruction, cbSize int) preClass {
	// Specialized ALU classes write exactly one 32-bit GPR (or predicate
	// pair for SETP) and model no CC interaction. The CC-carrying IADD
	// forms — the 64-bit address carry chains that dominate generic-path
	// traffic — get their own class; everything else touching CC stays
	// generic.
	if in.Mods.SetCC || in.Mods.X {
		if (in.Op == sass.OpIADD || in.Op == sass.OpIADD32) && alu2OK(in, cbSize) {
			return pcIADDC
		}
		return pcGeneric
	}
	switch in.Op {
	case sass.OpMOV, sass.OpMOV32, sass.OpS2R, sass.OpF2F:
		if alu1OK(in, cbSize) {
			return pcMOV
		}
	case sass.OpIADD, sass.OpIADD32:
		if alu2OK(in, cbSize) {
			return pcIADD
		}
	case sass.OpIMUL:
		if alu2OK(in, cbSize) {
			return pcIMUL
		}
	case sass.OpIMAD:
		if alu3OK(in, cbSize) {
			return pcIMAD
		}
	case sass.OpISCADD:
		if alu3OK(in, cbSize) {
			return pcISCADD
		}
	case sass.OpSHL:
		if alu2OK(in, cbSize) {
			return pcSHL
		}
	case sass.OpSHR:
		if alu2OK(in, cbSize) {
			return pcSHR
		}
	case sass.OpLOP:
		// An out-of-enum logic modifier silently writes nothing in the
		// interpreter; keep that quirk on the generic path.
		if in.Mods.Logic <= sass.LogicNOT && alu2OK(in, cbSize) {
			return pcLOP
		}
	case sass.OpSEL:
		if len(in.Srcs) == 3 && in.Srcs[2].Kind == sass.OpdPred && alu2OK(in, cbSize) {
			return pcSEL
		}
	case sass.OpISETP:
		if setpOK(in, cbSize) {
			return pcISETP
		}
	case sass.OpFSETP:
		if setpOK(in, cbSize) {
			return pcFSETP
		}
	case sass.OpFADD:
		if alu2OK(in, cbSize) {
			return pcFADD
		}
	case sass.OpFMUL:
		if alu2OK(in, cbSize) {
			return pcFMUL
		}
	case sass.OpFFMA:
		if alu3OK(in, cbSize) {
			return pcFFMA
		}
	case sass.OpIMNMX:
		if minmaxOK(in, cbSize) {
			return pcIMNMX
		}
	case sass.OpFMNMX:
		if minmaxOK(in, cbSize) {
			return pcFMNMX
		}
	case sass.OpMUFU:
		if alu1OK(in, cbSize) {
			return pcMUFU
		}
	case sass.OpPSETP:
		// The interpreter reads Srcs[0]/Srcs[1] as predicates and writes
		// Dsts[0] only.
		if len(in.Srcs) >= 2 && in.Srcs[0].Kind == sass.OpdPred &&
			in.Srcs[1].Kind == sass.OpdPred &&
			len(in.Dsts) >= 1 && in.Dsts[0].Kind == sass.OpdPred {
			return pcPSETP
		}
	case sass.OpBRA:
		if t, ok := in.BranchTarget(); ok && t.Kind == sass.OpdLabel {
			return pcBRA
		}
	case sass.OpSYNC:
		return pcSYNC
	case sass.OpLD, sass.OpST, sass.OpLDG, sass.OpSTG:
		if memOK(in) {
			return pcMemG
		}
	case sass.OpLDS, sass.OpSTS:
		if memOK(in) {
			return pcMemS
		}
	case sass.OpLDL, sass.OpSTL:
		if memOK(in) {
			return pcMemL
		}
	}
	return pcGeneric
}

// srcOK reports whether a source operand can be resolved to a preSrc.
func srcOK(o sass.Operand, cbSize int) bool {
	switch o.Kind {
	case sass.OpdReg, sass.OpdImm, sass.OpdSReg, sass.OpdPred:
		return true
	case sass.OpdCMem:
		// Out-of-range words must fault at execution time; the generic
		// path reproduces the exact cbRead32 fault.
		return o.Imm >= 0 && o.Imm+4 <= int64(cbSize)
	}
	return false
}

func dstOK(in *sass.Instruction) bool {
	// One plain 32-bit GPR destination (W64 pairs and wider go generic).
	return len(in.Dsts) == 1 && in.Dsts[0].Kind == sass.OpdReg &&
		in.Mods.Width != sass.W64 && in.Mods.Width != sass.W128
}

func srcsOK(in *sass.Instruction, n, cbSize int) bool {
	if len(in.Srcs) < n {
		return false
	}
	for i := 0; i < n; i++ {
		if !srcOK(in.Srcs[i], cbSize) {
			return false
		}
	}
	return true
}

func alu1OK(in *sass.Instruction, cbSize int) bool {
	return dstOK(in) && srcsOK(in, 1, cbSize)
}
func alu2OK(in *sass.Instruction, cbSize int) bool {
	return dstOK(in) && srcsOK(in, 2, cbSize)
}
func alu3OK(in *sass.Instruction, cbSize int) bool {
	return dstOK(in) && srcsOK(in, 3, cbSize)
}

// minmaxOK admits IMNMX/FMNMX: two value sources plus an optional
// predicate selector.
func minmaxOK(in *sass.Instruction, cbSize int) bool {
	if !dstOK(in) || !srcsOK(in, 2, cbSize) {
		return false
	}
	return len(in.Srcs) <= 2 || in.Srcs[2].Kind == sass.OpdPred
}

// setpOK admits ISETP/FSETP: predicate destinations, two value sources,
// optional combine predicate.
func setpOK(in *sass.Instruction, cbSize int) bool {
	if len(in.Dsts) < 1 || in.Dsts[0].Kind != sass.OpdPred {
		return false
	}
	if len(in.Dsts) > 1 && in.Dsts[1].Kind != sass.OpdPred {
		return false
	}
	if len(in.Dsts) > 2 {
		return false
	}
	if !srcsOK(in, 2, cbSize) {
		return false
	}
	return len(in.Srcs) <= 2 || in.Srcs[2].Kind == sass.OpdPred
}

// memOK admits a memory instruction to a specialized class: one memory
// operand, a plain register destination (loads) or data source (stores).
func memOK(in *sass.Instruction) bool {
	nmem := 0
	for _, s := range in.Srcs {
		if s.Kind == sass.OpdMem {
			nmem++
		}
	}
	if nmem != 1 {
		return false
	}
	if in.Op.IsMemRead() {
		if len(in.Dsts) != 1 || in.Dsts[0].Kind != sass.OpdReg {
			return false
		}
	} else {
		found := false
		for _, s := range in.Srcs {
			if s.Kind == sass.OpdReg {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// resolveSrc lowers one scalar source operand. Callers have already
// validated the operand via srcOK.
func resolveSrc(o sass.Operand) preSrc {
	switch o.Kind {
	case sass.OpdReg:
		if o.Reg == sass.RZ {
			return preSrc{kind: psZero}
		}
		return preSrc{kind: psReg, reg: o.Reg}
	case sass.OpdImm:
		return preSrc{kind: psImm, imm: uint32(o.Imm)}
	case sass.OpdCMem:
		return preSrc{kind: psCMem, off: int32(o.Imm)}
	case sass.OpdSReg:
		return preSrc{kind: psSR, sr: o.SR}
	case sass.OpdPred:
		return preSrc{kind: psPred, reg: o.Reg, neg: o.Neg}
	}
	return preSrc{kind: psZero}
}

// fillOperands resolves the class-specific operand fields.
func (p *preInstr) fillOperands(in *sass.Instruction, cbSize int) {
	p.dst = sass.RZ
	p.dstP = sass.PT
	p.dstQ = sass.PT
	switch {
	case p.class == pcGeneric || p.class == pcSYNC:
		return
	case p.class == pcBRA:
		t, _ := in.BranchTarget()
		p.target = int32(t.Imm)
		return
	case p.class >= pcMemG && p.class <= pcMemL:
		p.width = in.Mods.Width
		p.nbytes = uint8(in.Mods.Width.Bytes())
		p.memE = in.Mods.E
		p.store = !in.Op.IsMemRead()
		p.forceG = in.Op == sass.OpLDG || in.Op == sass.OpSTG
		for _, s := range in.Srcs {
			if s.Kind == sass.OpdMem {
				p.memBase = s.Reg
				p.memOff = s.Imm
			}
		}
		if p.store {
			p.dataReg = in.Srcs[srcDataIdx(in)].Reg
		} else {
			p.dst = in.Dsts[0].Reg
		}
		// A modifier set preserving the guard is needed for the SETP
		// fields below, but memory classes are done.
		return
	case p.class == pcISETP || p.class == pcFSETP:
		p.dstP = in.Dsts[0].Reg
		if len(in.Dsts) > 1 {
			p.dstQ = in.Dsts[1].Reg
		}
	case p.class == pcPSETP:
		// Only Dsts[0]; the interpreter ignores any complement operand.
		p.dstP = in.Dsts[0].Reg
	default:
		p.dst = in.Dsts[0].Reg
	}
	for i := 0; i < 3 && i < len(in.Srcs); i++ {
		p.srcs[i] = resolveSrc(in.Srcs[i])
	}
	// Absent optional predicate selectors read as PT (true), matching the
	// interpreter's defaults in execSetp and the min/max family.
	if (p.class == pcISETP || p.class == pcFSETP || p.class == pcIMNMX || p.class == pcFMNMX) &&
		len(in.Srcs) <= 2 {
		p.srcs[2] = preSrc{kind: psPred, reg: sass.PT}
	}
	p.cmp = in.Mods.Cmp
	p.logic = in.Mods.Logic
	p.mufu = in.Mods.Mufu
	p.unsigned = in.Mods.Unsigned
	p.negB = in.Mods.NegB
}

// fillScoreboard precomputes the consider (sbSrc) and retire (sbDst) slot
// lists, mirroring Warp.scoreboard instruction walks.
func (p *preInstr) fillScoreboard(in *sass.Instruction) {
	var buf [24]uint8
	add := func(dst *[]uint16, slot int) {
		for _, s := range *dst {
			if int(s) == slot {
				return
			}
		}
		*dst = append(*dst, uint16(slot))
	}
	for _, r := range in.AppendGPRSrcs(buf[:0]) {
		if r != sass.RZ {
			add(&p.sbSrc, int(r))
		}
	}
	for _, r := range in.AppendGPRDsts(buf[:0]) {
		if r != sass.RZ {
			add(&p.sbSrc, int(r)) // WAW: the previous write must retire first
		}
	}
	if !in.Guard.IsAlways() && in.Guard.Reg != sass.PT {
		add(&p.sbSrc, sbPredBase+int(in.Guard.Reg))
	}
	for _, s := range in.Srcs {
		if s.Kind == sass.OpdPred && s.Reg != sass.PT {
			add(&p.sbSrc, sbPredBase+int(s.Reg))
		}
	}
	if in.Mods.X || in.Mods.SetCC {
		add(&p.sbSrc, sbCCSlot)
	}
	for _, d := range in.AppendGPRDsts(buf[:0]) {
		if d != sass.RZ {
			add(&p.sbDst, int(d))
		}
	}
	for _, d := range in.Dsts {
		if d.Kind == sass.OpdPred && d.Reg != sass.PT {
			add(&p.sbDst, sbPredBase+int(d.Reg))
		}
	}
	if in.Mods.SetCC {
		add(&p.sbDst, sbCCSlot)
	}
}
