package sim_test

import (
	"testing"

	"sassi/internal/sass"
	"sassi/internal/sim"
)

// TestCTAWaves: more CTAs than can be resident at once run in waves and
// still all complete correctly.
func TestCTAWaves(t *testing.T) {
	prog := storeGlobalIdKernel(t)
	cfg := sim.MiniGPU()
	cfg.MaxCTAsPerSM = 1 // force waves: 8 CTAs over 2 SMs = 4 waves each
	dev := sim.NewDevice(cfg)
	const ctas = 8
	out := dev.Alloc(4*32*ctas, "out")
	stats, err := dev.Launch(prog, "gid", sim.LaunchParams{
		Grid: sim.D1(ctas), Block: sim.D1(32), Args: []uint64{out},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CTAs != ctas {
		t.Errorf("CTAs = %d", stats.CTAs)
	}
	for i := 0; i < 32*ctas; i++ {
		v, _ := dev.Global.Read32(out + uint64(4*i))
		if v != uint32(i) {
			t.Fatalf("out[%d] = %d (waved scheduling corrupted results)", i, v)
		}
	}
}

// TestResidencyLimitedByThreads: MaxThreadsPerSM bounds concurrent CTAs.
func TestResidencyLimitedByThreads(t *testing.T) {
	prog := storeGlobalIdKernel(t)
	cfg := sim.MiniGPU()
	cfg.MaxThreadsPerSM = 64 // two 32-thread CTAs at a time
	dev := sim.NewDevice(cfg)
	out := dev.Alloc(4*32*6, "out")
	if _, err := dev.Launch(prog, "gid", sim.LaunchParams{
		Grid: sim.D1(6), Block: sim.D1(32), Args: []uint64{out},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32*6; i++ {
		v, _ := dev.Global.Read32(out + uint64(4*i))
		if v != uint32(i) {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

// TestAtomicsAcrossCTAs: a global atomic accumulates across all CTAs and
// SMs exactly once per thread.
func TestAtomicsAcrossCTAs(t *testing.T) {
	k := &sass.Kernel{Name: "acc", Labels: map[string]int{}, NumRegs: 48}
	off := k.AddParam("ctr", 8)
	k.Instrs = []sass.Instruction{
		sass.New(sass.OpMOV, []sass.Operand{sass.R(40)}, []sass.Operand{sass.CMem(0, int64(off))}),
		sass.New(sass.OpMOV, []sass.Operand{sass.R(41)}, []sass.Operand{sass.CMem(0, int64(off+4))}),
		movi(0, 1),
		{Guard: sass.Always, Op: sass.OpATOM,
			Mods: sass.Mods{Atom: sass.AtomADD, E: true, Width: sass.W32},
			Dsts: []sass.Operand{sass.R(sass.RZ)},
			Srcs: []sass.Operand{sass.Mem(40, 0), sass.R(0)}},
		sass.New(sass.OpEXIT, nil, nil),
	}
	if err := k.ResolveLabels(); err != nil {
		t.Fatal(err)
	}
	prog := sass.NewProgram()
	prog.AddKernel(k)
	dev := sim.NewDevice(sim.MiniGPU())
	ctr := dev.Alloc(4, "ctr")
	const ctas, threads = 7, 96
	if _, err := dev.Launch(prog, "acc", sim.LaunchParams{
		Grid: sim.D1(ctas), Block: sim.D1(threads), Args: []uint64{ctr},
	}); err != nil {
		t.Fatal(err)
	}
	v, _ := dev.Global.Read32(ctr)
	if v != ctas*threads {
		t.Fatalf("counter = %d, want %d", v, ctas*threads)
	}
}

// TestCyclesScaleWithWork: doubling the grid roughly doubles total work
// and never decreases modeled kernel cycles.
func TestCyclesScaleWithWork(t *testing.T) {
	prog := storeGlobalIdKernel(t)
	run := func(ctas int) uint64 {
		dev := sim.NewDevice(sim.MiniGPU())
		out := dev.Alloc(uint64(4*32*ctas), "out")
		stats, err := dev.Launch(prog, "gid", sim.LaunchParams{
			Grid: sim.D1(ctas), Block: sim.D1(32), Args: []uint64{out},
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Cycles
	}
	small := run(2)
	big := run(8)
	if big <= small {
		t.Errorf("cycles did not grow with work: %d -> %d", small, big)
	}
}

// TestPerKernelConstBankIsolation: two kernels with different parameter
// layouts launch back to back without interference.
func TestPerKernelConstBankIsolation(t *testing.T) {
	prog := storeGlobalIdKernel(t)
	// Add a second kernel with three params.
	k2 := &sass.Kernel{Name: "second", Labels: map[string]int{}, NumRegs: 48}
	a := k2.AddParam("a", 4)
	bOff := k2.AddParam("b", 4)
	out := k2.AddParam("out", 8)
	k2.Instrs = []sass.Instruction{
		sass.New(sass.OpMOV, []sass.Operand{sass.R(0)}, []sass.Operand{sass.CMem(0, int64(a))}),
		sass.New(sass.OpMOV, []sass.Operand{sass.R(1)}, []sass.Operand{sass.CMem(0, int64(bOff))}),
		alu(sass.OpIADD, sass.Mods{}, 2, sass.R(0), sass.R(1)),
		sass.New(sass.OpMOV, []sass.Operand{sass.R(40)}, []sass.Operand{sass.CMem(0, int64(out))}),
		sass.New(sass.OpMOV, []sass.Operand{sass.R(41)}, []sass.Operand{sass.CMem(0, int64(out+4))}),
		{Guard: sass.Always, Op: sass.OpSTG, Mods: sass.Mods{E: true},
			Srcs: []sass.Operand{sass.Mem(40, 0), sass.R(2)}},
		sass.New(sass.OpEXIT, nil, nil),
	}
	if err := k2.ResolveLabels(); err != nil {
		t.Fatal(err)
	}
	prog.AddKernel(k2)

	dev := sim.NewDevice(sim.MiniGPU())
	buf := dev.Alloc(4*64, "buf")
	if _, err := dev.Launch(prog, "gid", sim.LaunchParams{
		Grid: sim.D1(1), Block: sim.D1(32), Args: []uint64{buf},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Launch(prog, "second", sim.LaunchParams{
		Grid: sim.D1(1), Block: sim.D1(1), Args: []uint64{11, 31, buf + 128},
	}); err != nil {
		t.Fatal(err)
	}
	if v, _ := dev.Global.Read32(buf + 128); v != 42 {
		t.Fatalf("second kernel result = %d", v)
	}
	if v, _ := dev.Global.Read32(buf); v != 0 {
		t.Fatalf("first kernel output clobbered: %d", v)
	}
}
