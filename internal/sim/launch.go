package sim

import (
	"encoding/binary"
	"fmt"
	"sync"

	"sassi/internal/mem"
	"sassi/internal/obs"
	"sassi/internal/sass"
)

// Dim3 is a CUDA-style 3D extent.
type Dim3 struct{ X, Y, Z int }

// D1 returns a 1-D extent.
func D1(x int) Dim3 { return Dim3{X: x, Y: 1, Z: 1} }

// D2 returns a 2-D extent.
func D2(x, y int) Dim3 { return Dim3{X: x, Y: y, Z: 1} }

// Count returns the total element count.
func (d Dim3) Count() int {
	x, y, z := d.X, d.Y, d.Z
	if x < 1 {
		x = 1
	}
	if y < 1 {
		y = 1
	}
	if z < 1 {
		z = 1
	}
	return x * y * z
}

// LaunchParams configures one kernel launch.
type LaunchParams struct {
	Grid  Dim3
	Block Dim3

	// Args holds one value per kernel parameter, in declaration order.
	// 32-bit parameters use the low word.
	Args []uint64

	// SharedBytes is extra dynamic shared memory per CTA.
	SharedBytes int

	// StackBytes overrides the per-thread local memory size (0 = config
	// default plus the kernel's static requirement).
	StackBytes int
}

// Launch executes a kernel on the device and returns its statistics.
func (d *Device) Launch(prog *sass.Program, kernelName string, p LaunchParams) (*KernelStats, error) {
	k, ok := prog.Kernel(kernelName)
	if !ok {
		return nil, fmt.Errorf("sim: kernel %q not in program", kernelName)
	}
	if len(p.Args) != len(k.Params) {
		return nil, fmt.Errorf("sim: kernel %q wants %d args, got %d", kernelName, len(k.Params), len(p.Args))
	}
	e := &engine{dev: d, prog: prog, k: k}
	if d.Trace != nil {
		d.nameTraceLanes()
		e.cycleBase = d.traceBase()
	}
	e.stats = &KernelStats{Kernel: kernelName, SMCycles: make([]uint64, d.Cfg.NumSMs)}
	e.sms = make([]smShard, d.Cfg.NumSMs)
	for i := range e.sms {
		e.sms[i].hier = mem.Hierarchy{
			L1: d.L1s[i], L2: d.L2s[i], DRAM: d.DRAMs[i],
			L1Latency: d.Cfg.L1Latency, L2Latency: d.Cfg.L2Latency,
		}
	}

	// Build constant bank 0: launch metadata then parameters.
	cbSize := sass.ParamBase
	for _, pd := range k.Params {
		if end := pd.Offset + pd.Size; end > cbSize {
			cbSize = end
		}
	}
	e.cb = make([]byte, cbSize)
	binary.LittleEndian.PutUint32(e.cb[sass.CBStackBase:], uint32(mem.LocalBase))
	binary.LittleEndian.PutUint32(e.cb[sass.CBSharedBase:], uint32(mem.SharedBase))
	for i, pd := range k.Params {
		switch pd.Size {
		case 8:
			binary.LittleEndian.PutUint64(e.cb[pd.Offset:], p.Args[i])
		default:
			binary.LittleEndian.PutUint32(e.cb[pd.Offset:], uint32(p.Args[i]))
		}
	}
	if d.Cfg.Engine == EnginePredecoded {
		// The constant bank's size is a function of the kernel's parameter
		// layout, so the predecode (which bounds-checks cmem offsets against
		// it) is valid for every launch and cached per device.
		e.pre = d.pre.get(k, cbSize)
		e.arena = arenaPool.Get().(*launchArena)
	}

	// Geometry.
	grid, block := p.Grid, p.Block
	normDim(&grid)
	normDim(&block)
	e.ntid = [3]uint32{uint32(block.X), uint32(block.Y), uint32(block.Z)}
	e.nctaid = [3]uint32{uint32(grid.X), uint32(grid.Y), uint32(grid.Z)}
	threadsPerCTA := block.Count()
	numCTAs := grid.Count()
	e.stats.CTAs = numCTAs
	e.stats.Threads = numCTAs * threadsPerCTA
	if d.PCSamp != nil {
		e.attachSampler(d.PCSamp, threadsPerCTA)
	}

	numRegs := k.NumRegs
	if numRegs < 16 {
		numRegs = 16
	}
	localBytes := p.StackBytes
	if localBytes == 0 {
		localBytes = k.LocalBytes + d.Cfg.DefaultStackBytes
	}
	sharedBytes := k.SharedBytes + p.SharedBytes
	if sharedBytes > d.Cfg.SharedPerSM {
		return nil, fmt.Errorf("sim: CTA needs %d shared bytes, SM has %d", sharedBytes, d.Cfg.SharedPerSM)
	}

	// Residency limit per SM.
	maxResident := d.Cfg.MaxCTAsPerSM
	if threadsPerCTA > 0 {
		if byThreads := d.Cfg.MaxThreadsPerSM / threadsPerCTA; byThreads < maxResident {
			maxResident = byThreads
		}
	}
	if sharedBytes > 0 {
		if byShared := d.Cfg.SharedPerSM / sharedBytes; byShared < maxResident {
			maxResident = byShared
		}
	}
	if maxResident < 1 {
		maxResident = 1
	}

	// Distribute CTAs round-robin across SMs, then run each SM to
	// completion — one goroutine per SM by default. SMs share only the
	// internally-synchronized Global memory; all per-SM state (L1, L2
	// slice, DRAM channel, stat counters) lives in that SM's shard, so
	// the merged statistics are identical to the sequential engine's.
	// Every SM runs to its own completion or first error even when
	// another SM fails, and the lowest-numbered failing SM's error is
	// reported, keeping the outcome independent of goroutine timing.
	perSM := make([][]int, d.Cfg.NumSMs)
	for c := 0; c < numCTAs; c++ {
		sm := c % d.Cfg.NumSMs
		perSM[sm] = append(perSM[sm], c)
	}
	smErrs := make([]error, d.Cfg.NumSMs)
	// A MemWatch observer needs the sequential path: trace events funnel
	// into one callback, and their order is part of the exported trace.
	if d.Cfg.SequentialSMs || d.Cfg.Engine == EngineSequential || d.MemWatch != nil {
		for sm, ctas := range perSM {
			if len(ctas) == 0 {
				continue
			}
			smErrs[sm] = e.runSM(sm, ctas, grid, block, numRegs, localBytes, sharedBytes, maxResident)
		}
	} else {
		var wg sync.WaitGroup
		for sm, ctas := range perSM {
			if len(ctas) == 0 {
				continue
			}
			wg.Add(1)
			go func(sm int, ctas []int) {
				defer wg.Done()
				smErrs[sm] = e.runSM(sm, ctas, grid, block, numRegs, localBytes, sharedBytes, maxResident)
			}(sm, ctas)
		}
		wg.Wait()
	}
	e.finishStats()
	if d.Trace != nil {
		for sm := range perSM {
			if len(perSM[sm]) == 0 {
				continue
			}
			d.Trace.Span(obs.PidDevice, sm, "kernel:"+kernelName,
				float64(e.cycleBase), float64(e.sms[sm].cycles),
				map[string]any{"ctas": len(perSM[sm]), "launch_cycles": e.stats.Cycles})
		}
		d.traceAdvance(e.stats.Cycles)
	}
	e.publishMetrics()
	if e.arena != nil {
		arenaPool.Put(e.arena)
		e.arena = nil
	}
	if e.samp != nil {
		// Merge even a failed launch's samples: profiles of crashing
		// kernels are exactly what a profiler is for.
		d.PCSamp.LaunchEnd(e.samp)
	}
	for _, err := range smErrs {
		if err != nil {
			return e.stats, err
		}
	}
	return e.stats, nil
}

func normDim(d *Dim3) {
	if d.X < 1 {
		d.X = 1
	}
	if d.Y < 1 {
		d.Y = 1
	}
	if d.Z < 1 {
		d.Z = 1
	}
}

// finishStats merges the per-SM shards into the launch statistics. Every
// reduction is order-independent (sum or max), so the result does not
// depend on how the SM goroutines interleaved.
func (e *engine) finishStats() {
	s := e.stats
	for i := range e.sms {
		st := &e.sms[i]
		s.WarpInstrs += st.warpInstrs
		s.ThreadInstrs += st.threadInstrs
		s.InjectedWarpInstrs += st.injectedWarpInstrs
		s.InjectedThreadInstrs += st.injectedThreadInstrs
		s.HandlerCalls += st.handlerCalls
		s.GlobalTransactions += st.globalTransactions
		s.ScoreboardStalls += st.scoreboardStalls
		if st.maxWarpInstrs > s.MaxWarpInstrs {
			s.MaxWarpInstrs = st.maxWarpInstrs
		}
		s.SMCycles[i] = st.cycles
		if st.cycles > s.Cycles {
			s.Cycles = st.cycles
		}
	}
}

// publishMetrics pushes the launch's merged counters into the device's
// registry: per-SM sharded issue/stall/divergence counters (published once
// per launch from the single post-merge goroutine, so shard writes never
// race) and per-level memory-hierarchy gauges. A nil registry skips
// everything — the simulation itself never consults the registry.
func (e *engine) publishMetrics() {
	reg := e.dev.Metrics
	if reg == nil {
		return
	}
	n := e.dev.Cfg.NumSMs
	shard := func(name string) *obs.ShardedCounter { return reg.Sharded(name, n) }
	warp := shard(obs.MSimWarpInstrs)
	thread := shard(obs.MSimThreadInstrs)
	injW := shard(obs.MSimInjectedWarpInstrs)
	injT := shard(obs.MSimInjectedThreadInstrs)
	hcalls := shard(obs.MSimHandlerCalls)
	cycles := shard(obs.MSimCycles)
	stalls := shard(obs.MSimBarrierStalls)
	sbStalls := shard(obs.MSimScoreboardStalls)
	div := shard(obs.MSimDivergentBranches)
	ctas := shard(obs.MSimCTAs)
	gtrans := shard(obs.MMemGlobalTrans)
	for i := range e.sms {
		st := &e.sms[i]
		warp.AddShard(i, st.warpInstrs)
		thread.AddShard(i, st.threadInstrs)
		injW.AddShard(i, st.injectedWarpInstrs)
		injT.AddShard(i, st.injectedThreadInstrs)
		hcalls.AddShard(i, st.handlerCalls)
		cycles.AddShard(i, st.cycles)
		stalls.AddShard(i, st.barrierStallSweeps)
		sbStalls.AddShard(i, st.scoreboardStalls)
		div.AddShard(i, st.divergentBranches)
		ctas.AddShard(i, st.ctasRun)
		gtrans.AddShard(i, st.globalTransactions)
	}
	reg.Counter(obs.MSimLaunches).Inc()
	reg.Counter(obs.MSimThreads).Add(uint64(e.stats.Threads))
	reg.Gauge(obs.MSimMaxWarpInstrs).Set(e.stats.MaxWarpInstrs)
	mem.PublishHierarchy(reg, e.dev.L1Stats(), e.dev.L2Stats(), e.dev.DRAMTransactions())
}

// buildCTA instantiates the threads and warps of one CTA.
func (e *engine) buildCTA(ctaIdx int, grid, block Dim3, numRegs, localBytes, sharedBytes, sm int) *CTA {
	cx := uint32(ctaIdx % grid.X)
	cy := uint32(ctaIdx / grid.X % grid.Y)
	cz := uint32(ctaIdx / (grid.X * grid.Y))
	cta := &CTA{
		Index: ctaIdx, CtaX: cx, CtaY: cy, CtaZ: cz,
		Shared: mem.NewShared(sharedBytes),
		SM:     sm,
		Kernel: e.k,
	}
	threads := block.Count()
	if e.arena != nil {
		cta.slab = e.arena.getSlab(threads, numRegs)
	}
	numWarps := (threads + WarpSize - 1) / WarpSize
	for wi := 0; wi < numWarps; wi++ {
		w := &Warp{CTA: cta, IDinCTA: wi}
		for lane := 0; lane < WarpSize; lane++ {
			flat := wi*WarpSize + lane
			if flat >= threads {
				break
			}
			var t *Thread
			if cta.slab != nil {
				t = cta.slab.newThread(numRegs, localBytes)
			} else {
				t = newThread(numRegs, localBytes)
			}
			t.FlatTid = uint32(flat)
			t.TidX = uint32(flat % block.X)
			t.TidY = uint32(flat / block.X % block.Y)
			t.TidZ = uint32(flat / (block.X * block.Y))
			t.CtaX, t.CtaY, t.CtaZ = cx, cy, cz
			t.LaneID = uint32(lane)
			t.GlobalFlat = uint64(ctaIdx)*uint64(threads) + uint64(flat)
			t.warp = w
			w.Threads[lane] = t
			w.Active |= 1 << lane
			w.Alive |= 1 << lane
		}
		cta.Warps = append(cta.Warps, w)
	}
	return cta
}

// runSM executes all CTAs assigned to one SM, keeping up to maxResident
// CTAs concurrently resident and interleaving their warps round-robin, one
// instruction per warp per sweep.
func (e *engine) runSM(sm int, ctas []int, grid, block Dim3, numRegs, localBytes, sharedBytes, maxResident int) error {
	pending := ctas
	st := &e.sms[sm]
	tr := e.dev.Trace
	var resident []*CTA
	for len(pending) > 0 || len(resident) > 0 {
		for len(resident) < maxResident && len(pending) > 0 {
			cta := e.buildCTA(pending[0], grid, block, numRegs, localBytes, sharedBytes, sm)
			cta.traceStart = st.cycles
			resident = append(resident, cta)
			pending = pending[1:]
		}
		progress := false
		// With exactly one live warp on the SM and nothing pending, no
		// other warp can observe the instruction interleaving, so the
		// predecoded engine may run that warp's whole basic blocks
		// back-to-back instead of one instruction per sweep.
		solo := e.pre != nil && len(pending) == 0 && len(resident) == 1 &&
			resident[0].liveWarps() == 1
		for _, cta := range resident {
			for _, w := range cta.Warps {
				if w.Done {
					continue
				}
				if w.AtBarrier {
					st.barrierStallSweeps++
					continue
				}
				var err error
				switch {
				case solo:
					err = e.runWarpSolo(w)
				case e.pre != nil:
					err = e.stepPre(w)
				default:
					err = e.step(w)
				}
				if err != nil {
					return err
				}
				progress = true
			}
			// Barrier release once every live warp has arrived.
			if cta.barrierReady() {
				arrived := false
				for _, w := range cta.Warps {
					if w.AtBarrier {
						arrived = true
						break
					}
				}
				if arrived {
					cta.releaseBarrier()
					progress = true
				}
			}
		}
		// Retire completed CTAs.
		live := resident[:0]
		for _, cta := range resident {
			if cta.liveWarps() > 0 {
				live = append(live, cta)
				continue
			}
			st.ctasRun++
			if e.dev.CTARetire != nil {
				e.dev.CTARetire(cta)
			}
			if tr != nil {
				tr.Span(obs.PidDevice, sm, fmt.Sprintf("cta %d", cta.Index),
					float64(e.cycleBase+cta.traceStart), float64(st.cycles-cta.traceStart), nil)
			}
			if cta.slab != nil {
				// After the retire observer: anyone wanting thread state
				// beyond this point must have copied it.
				e.arena.putSlab(cta.slab)
				cta.slab = nil
			}
		}
		resident = live
		if !progress && len(resident) > 0 {
			return &KernelError{Kind: ErrHang, Kernel: e.k.Name,
				Detail: fmt.Sprintf("SM %d deadlocked (barrier divergence?)", sm)}
		}
	}
	return nil
}
