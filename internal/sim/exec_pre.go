package sim

import (
	"encoding/binary"
	"math"
	"math/bits"

	"sassi/internal/mem"
	"sassi/internal/sass"
)

// stepPre executes one instruction for warp w on the predecoded engine.
// It is step() with the hot pieces swapped for their predecoded forms:
// the guard is pre-split, operand kinds are resolved, the scoreboard
// walks precomputed slot lists, and specialized classes execute with
// manual lane loops (or a single leader computation broadcast to the
// warp when the value lattice proved the instruction uniform). All
// accounting — issue counters, watchdog, cycles, stalls, PC samples —
// matches step() field for field.
func (e *engine) stepPre(w *Warp) error {
	if w.Done || w.AtBarrier {
		return nil
	}
	if w.PC < 0 || w.PC >= len(e.pre.ins) {
		return e.fail(w, ErrInvalid, "PC out of range (fell off kernel end)")
	}
	st := &e.sms[w.CTA.SM]
	pcIdx := w.PC
	p := &e.pre.ins[pcIdx]
	var divBefore uint64
	if st.samp != nil {
		divBefore = st.divergentBranches
	}
	w.DynWarpInstrs++
	if w.DynWarpInstrs > st.maxWarpInstrs {
		st.maxWarpInstrs = w.DynWarpInstrs
	}
	if w.DynWarpInstrs > e.dev.Cfg.WatchdogWarpInstrs {
		return e.fail(w, ErrHang, "watchdog: warp exceeded %d instructions", e.dev.Cfg.WatchdogWarpInstrs)
	}

	// Guard evaluation over the active mask. A lattice-proven uniform
	// guard is evaluated once on the leader lane (all-or-none by proof);
	// otherwise each active lane reads its own predicate file.
	exec := w.Active
	if p.flags&pfGuardAlways == 0 {
		gn := p.flags&pfGuardNeg != 0
		if p.flags&pfUniform != 0 && exec != 0 {
			if !w.Threads[bits.TrailingZeros32(exec)].guardPasses(p.guardReg, gn) {
				exec = 0
			}
		} else {
			exec = 0
			for m := w.Active; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				if w.Threads[l].guardPasses(p.guardReg, gn) {
					exec |= 1 << l
				}
			}
		}
	}

	// Issue accounting.
	st.warpInstrs++
	nexec := bits.OnesCount32(exec)
	st.threadInstrs += uint64(nexec)
	if p.flags&pfInjected != 0 {
		st.injectedWarpInstrs++
		st.injectedThreadInstrs += uint64(nexec)
	}
	cost := int(p.staticCost)
	if p.flags&pfFoldDyn == 0 {
		for m := exec; m != 0; m &= m - 1 {
			w.Threads[bits.TrailingZeros32(m)].DynInstrs++
		}
	}
	advance := true
	var err error
	switch {
	case p.class == pcGeneric:
		advance, cost, err = e.execOp(w, &e.k.Instrs[pcIdx], exec, cost)
	case p.class < pcMemG:
		e.execPreALU(w, p, exec)
	case p.class <= pcMemL:
		var memCost int
		memCost, err = e.execPreMem(w, p, exec)
		cost += memCost
	case p.class == pcIADDC:
		e.execPreIADDC(w, p, exec)
	case p.class == pcPSETP:
		e.execPrePSETP(w, p, exec)
	case p.class == pcBRA:
		advance = false
		e.execPreBRA(w, exec, p.target)
	default: // pcSYNC
		advance = false
		if !w.popToNonEmpty() {
			w.Done = true
		}
	}

	if err != nil {
		if ke, ok := err.(*KernelError); ok {
			return ke
		}
		if mf, ok := err.(*mem.Fault); ok {
			return e.fail(w, ErrMemFault, "%v", mf)
		}
		return e.fail(w, ErrInvalid, "%v", err)
	}
	if advance {
		w.PC++
	}
	stall := w.scoreboardPre(p, cost)
	st.cycles += uint64(cost) + stall
	st.scoreboardStalls += stall
	if st.samp != nil && st.cycles >= st.sampNext {
		e.takeSample(st, w, pcIdx, &e.k.Instrs[pcIdx], nexec, cost, stall, divBefore)
	}
	return nil
}

// scoreboardPre is Warp.scoreboard over precomputed slot lists: same
// hazard model, no per-step operand walks.
func (w *Warp) scoreboardPre(p *preInstr, cost int) (stall uint64) {
	ready := uint64(0)
	for _, s := range p.sbSrc {
		if r := w.readyAt[s]; r > ready {
			ready = r
		}
	}
	if ready > w.clock {
		stall = ready - w.clock
	}
	w.clock += stall + uint64(cost)
	retire := w.clock + uint64(p.resLat)
	for _, d := range p.sbDst {
		w.readyAt[d] = retire
	}
	return stall
}

// preSrcU32 evaluates a resolved scalar source operand for one thread.
// All failure modes were discharged at predecode (out-of-range constant
// words demote the instruction to pcGeneric), so reads cannot fault.
func (e *engine) preSrcU32(t *Thread, s *preSrc) uint32 {
	switch s.kind {
	case psReg:
		return t.Regs[s.reg]
	case psImm:
		return s.imm
	case psCMem:
		return binary.LittleEndian.Uint32(e.cb[s.off:])
	case psSR:
		return e.readSR(t, s.sr)
	case psPred:
		if t.guardPasses(s.reg, s.neg) {
			return 1
		}
		return 0
	}
	return 0
}

// aluCompute executes one specialized single-destination ALU instruction
// for one thread, returning the register result. The per-class semantics
// mirror execALULane exactly.
func (e *engine) aluCompute(t *Thread, p *preInstr) uint32 {
	switch p.class {
	case pcMOV:
		return e.preSrcU32(t, &p.srcs[0])
	case pcIADD:
		a := e.preSrcU32(t, &p.srcs[0])
		b := e.preSrcU32(t, &p.srcs[1])
		if p.negB {
			b = -b
		}
		return a + b
	case pcIMUL:
		return e.preSrcU32(t, &p.srcs[0]) * e.preSrcU32(t, &p.srcs[1])
	case pcIMAD:
		return e.preSrcU32(t, &p.srcs[0])*e.preSrcU32(t, &p.srcs[1]) + e.preSrcU32(t, &p.srcs[2])
	case pcISCADD:
		a := e.preSrcU32(t, &p.srcs[0])
		b := e.preSrcU32(t, &p.srcs[1])
		sh := e.preSrcU32(t, &p.srcs[2])
		return (a << (sh & 31)) + b
	case pcSHL:
		a := e.preSrcU32(t, &p.srcs[0])
		b := e.preSrcU32(t, &p.srcs[1])
		if b >= 32 {
			return 0
		}
		return a << b
	case pcSHR:
		a := e.preSrcU32(t, &p.srcs[0])
		b := e.preSrcU32(t, &p.srcs[1])
		if p.unsigned {
			if b >= 32 {
				return 0
			}
			return a >> b
		}
		if b >= 32 {
			b = 31
		}
		return u32(i32(a) >> b)
	case pcLOP:
		a := e.preSrcU32(t, &p.srcs[0])
		b := e.preSrcU32(t, &p.srcs[1])
		switch p.logic {
		case sass.LogicAND:
			return a & b
		case sass.LogicOR:
			return a | b
		case sass.LogicXOR:
			return a ^ b
		case sass.LogicPASS:
			return b
		case sass.LogicNOT:
			return ^b
		}
		return 0
	case pcSEL:
		if t.guardPasses(p.srcs[2].reg, p.srcs[2].neg) {
			return e.preSrcU32(t, &p.srcs[0])
		}
		return e.preSrcU32(t, &p.srcs[1])
	case pcFADD:
		a := e.preSrcU32(t, &p.srcs[0])
		fb := f32(e.preSrcU32(t, &p.srcs[1]))
		if p.negB {
			fb = -fb
		}
		return f32b(f32(a) + fb)
	case pcFMUL:
		a := e.preSrcU32(t, &p.srcs[0])
		fb := f32(e.preSrcU32(t, &p.srcs[1]))
		if p.negB {
			fb = -fb
		}
		return f32b(f32(a) * fb)
	case pcFFMA:
		a := e.preSrcU32(t, &p.srcs[0])
		b := e.preSrcU32(t, &p.srcs[1])
		c := e.preSrcU32(t, &p.srcs[2])
		return f32b(f32(a)*f32(b) + f32(c))
	case pcIMNMX:
		a := e.preSrcU32(t, &p.srcs[0])
		b := e.preSrcU32(t, &p.srcs[1])
		takeMin := t.guardPasses(p.srcs[2].reg, p.srcs[2].neg)
		if p.unsigned {
			if (a < b) == takeMin {
				return a
			}
			return b
		}
		if (i32(a) < i32(b)) == takeMin {
			return a
		}
		return b
	case pcFMNMX:
		a := e.preSrcU32(t, &p.srcs[0])
		b := e.preSrcU32(t, &p.srcs[1])
		takeMin := t.guardPasses(p.srcs[2].reg, p.srcs[2].neg)
		if (f32(a) < f32(b)) == takeMin {
			return a
		}
		return b
	case pcMUFU:
		x := float64(f32(e.preSrcU32(t, &p.srcs[0])))
		return f32b(float32(mufuEval(p.mufu, x)))
	}
	return 0
}

// mufuEval evaluates one special-function-unit op; an out-of-enum
// function returns 0, matching the interpreter's silent default.
func mufuEval(fn sass.MufuFunc, x float64) float64 {
	switch fn {
	case sass.MufuRCP:
		return 1 / x
	case sass.MufuRSQ:
		return 1 / math.Sqrt(x)
	case sass.MufuSQRT:
		return math.Sqrt(x)
	case sass.MufuSIN:
		return math.Sin(x)
	case sass.MufuCOS:
		return math.Cos(x)
	case sass.MufuEX2:
		return math.Exp2(x)
	case sass.MufuLG2:
		return math.Log2(x)
	}
	return 0
}

// setpCompute evaluates ISETP/FSETP for one thread, returning the primary
// and complement predicate results (execSetp semantics).
func (e *engine) setpCompute(t *Thread, p *preInstr) (bool, bool) {
	a := e.preSrcU32(t, &p.srcs[0])
	b := e.preSrcU32(t, &p.srcs[1])
	var cmp bool
	if p.class == pcFSETP {
		fa, fb := f32(a), f32(b)
		switch p.cmp {
		case sass.CmpLT:
			cmp = fa < fb
		case sass.CmpLE:
			cmp = fa <= fb
		case sass.CmpGT:
			cmp = fa > fb
		case sass.CmpGE:
			cmp = fa >= fb
		case sass.CmpEQ:
			cmp = fa == fb
		case sass.CmpNE:
			cmp = fa != fb
		}
	} else if p.unsigned {
		switch p.cmp {
		case sass.CmpLT:
			cmp = a < b
		case sass.CmpLE:
			cmp = a <= b
		case sass.CmpGT:
			cmp = a > b
		case sass.CmpGE:
			cmp = a >= b
		case sass.CmpEQ:
			cmp = a == b
		case sass.CmpNE:
			cmp = a != b
		}
	} else {
		sa, sb := i32(a), i32(b)
		switch p.cmp {
		case sass.CmpLT:
			cmp = sa < sb
		case sass.CmpLE:
			cmp = sa <= sb
		case sass.CmpGT:
			cmp = sa > sb
		case sass.CmpGE:
			cmp = sa >= sb
		case sass.CmpEQ:
			cmp = sa == sb
		case sass.CmpNE:
			cmp = sa != sb
		}
	}
	c := t.guardPasses(p.srcs[2].reg, p.srcs[2].neg)
	switch p.logic {
	case sass.LogicAND:
		return cmp && c, !cmp && c
	case sass.LogicOR:
		return cmp || c, !cmp || c
	case sass.LogicXOR:
		return cmp != c, !cmp != c
	}
	return cmp, !cmp
}

// execPreALU runs one specialized ALU instruction over the executing
// lanes: the uniform-warp fast path computes once on the leader lane and
// broadcasts; otherwise every lane computes.
func (e *engine) execPreALU(w *Warp, p *preInstr, exec uint32) {
	if exec == 0 {
		return
	}
	setp := p.class == pcISETP || p.class == pcFSETP
	if p.flags&pfUniform != 0 && exec == w.Active {
		lead := w.Threads[bits.TrailingZeros32(exec)]
		if setp {
			v, vq := e.setpCompute(lead, p)
			for m := exec; m != 0; m &= m - 1 {
				t := w.Threads[bits.TrailingZeros32(m)]
				t.DynInstrs++
				t.WritePred(p.dstP, v)
				if p.dstQ != sass.PT {
					t.WritePred(p.dstQ, vq)
				}
			}
			return
		}
		v := e.aluCompute(lead, p)
		if p.dst != sass.RZ {
			for m := exec; m != 0; m &= m - 1 {
				t := w.Threads[bits.TrailingZeros32(m)]
				t.DynInstrs++
				t.Regs[p.dst] = v
			}
		} else {
			for m := exec; m != 0; m &= m - 1 {
				w.Threads[bits.TrailingZeros32(m)].DynInstrs++
			}
		}
		return
	}
	if setp {
		e.execPreSetp(w, p, exec)
		return
	}
	var ls laneSrcs
	if p.dst != sass.RZ && e.resolveLaneSrcs(p, &ls, 3) && e.execPreALUFast(w, p, &ls, exec) {
		return
	}
	for m := exec; m != 0; m &= m - 1 {
		t := w.Threads[bits.TrailingZeros32(m)]
		t.DynInstrs++
		t.WriteReg(p.dst, e.aluCompute(t, p))
	}
}

// laneSrcs is the per-warp-step fetch plan for a specialized ALU
// instruction: each source collapses to either a lane-invariant 32-bit
// constant (immediate, constant-bank word — fixed for the launch — or
// folded RZ) or a per-lane register index. Building the plan once per
// warp step hoists the operand-kind dispatch out of the lane loop.
type laneSrcs struct {
	r0, r1, r2 int32 // register index; -1 selects the constant
	c0, c1, c2 uint32
}

// resolveLaneSrcs fills the fetch plan for the first n sources and
// reports whether all of them are lane-invariant constants or plain
// register reads. Special registers and predicate operands keep the
// per-lane slow path.
func (e *engine) resolveLaneSrcs(p *preInstr, ls *laneSrcs, n int) bool {
	ls.r0, ls.r1, ls.r2 = -1, -1, -1
	for i := 0; i < n; i++ {
		s := &p.srcs[i]
		var r int32 = -1
		var c uint32
		switch s.kind {
		case psZero:
		case psReg:
			r = int32(s.reg)
		case psImm:
			c = s.imm
		case psCMem:
			c = binary.LittleEndian.Uint32(e.cb[s.off:])
		default:
			return false
		}
		switch i {
		case 0:
			ls.r0, ls.c0 = r, c
		case 1:
			ls.r1, ls.c1 = r, c
		case 2:
			ls.r2, ls.c2 = r, c
		}
	}
	return true
}

// execPreALUFast executes the hot ALU classes with the class switch and
// all lane-invariant work hoisted out of the lane loop: per lane only
// register reads, the arithmetic itself, and the destination write
// remain. Reports false for classes without a specialized loop (the
// predicate-selector family), which then use the aluCompute path. The
// per-class arithmetic is the same expression aluCompute evaluates.
func (e *engine) execPreALUFast(w *Warp, p *preInstr, ls *laneSrcs, exec uint32) bool {
	dst := p.dst
	switch p.class {
	case pcMOV:
		for m := exec; m != 0; m &= m - 1 {
			t := w.Threads[bits.TrailingZeros32(m)]
			t.DynInstrs++
			a := ls.c0
			if ls.r0 >= 0 {
				a = t.Regs[ls.r0]
			}
			t.Regs[dst] = a
		}
	case pcIADD:
		neg := p.negB
		for m := exec; m != 0; m &= m - 1 {
			t := w.Threads[bits.TrailingZeros32(m)]
			t.DynInstrs++
			a, b := ls.c0, ls.c1
			if ls.r0 >= 0 {
				a = t.Regs[ls.r0]
			}
			if ls.r1 >= 0 {
				b = t.Regs[ls.r1]
			}
			if neg {
				b = -b
			}
			t.Regs[dst] = a + b
		}
	case pcIMUL:
		for m := exec; m != 0; m &= m - 1 {
			t := w.Threads[bits.TrailingZeros32(m)]
			t.DynInstrs++
			a, b := ls.c0, ls.c1
			if ls.r0 >= 0 {
				a = t.Regs[ls.r0]
			}
			if ls.r1 >= 0 {
				b = t.Regs[ls.r1]
			}
			t.Regs[dst] = a * b
		}
	case pcIMAD:
		for m := exec; m != 0; m &= m - 1 {
			t := w.Threads[bits.TrailingZeros32(m)]
			t.DynInstrs++
			a, b, c := ls.c0, ls.c1, ls.c2
			if ls.r0 >= 0 {
				a = t.Regs[ls.r0]
			}
			if ls.r1 >= 0 {
				b = t.Regs[ls.r1]
			}
			if ls.r2 >= 0 {
				c = t.Regs[ls.r2]
			}
			t.Regs[dst] = a*b + c
		}
	case pcISCADD:
		for m := exec; m != 0; m &= m - 1 {
			t := w.Threads[bits.TrailingZeros32(m)]
			t.DynInstrs++
			a, b, sh := ls.c0, ls.c1, ls.c2
			if ls.r0 >= 0 {
				a = t.Regs[ls.r0]
			}
			if ls.r1 >= 0 {
				b = t.Regs[ls.r1]
			}
			if ls.r2 >= 0 {
				sh = t.Regs[ls.r2]
			}
			t.Regs[dst] = (a << (sh & 31)) + b
		}
	case pcSHL:
		for m := exec; m != 0; m &= m - 1 {
			t := w.Threads[bits.TrailingZeros32(m)]
			t.DynInstrs++
			a, b := ls.c0, ls.c1
			if ls.r0 >= 0 {
				a = t.Regs[ls.r0]
			}
			if ls.r1 >= 0 {
				b = t.Regs[ls.r1]
			}
			v := uint32(0)
			if b < 32 {
				v = a << b
			}
			t.Regs[dst] = v
		}
	case pcSHR:
		unsigned := p.unsigned
		for m := exec; m != 0; m &= m - 1 {
			t := w.Threads[bits.TrailingZeros32(m)]
			t.DynInstrs++
			a, b := ls.c0, ls.c1
			if ls.r0 >= 0 {
				a = t.Regs[ls.r0]
			}
			if ls.r1 >= 0 {
				b = t.Regs[ls.r1]
			}
			var v uint32
			if unsigned {
				if b < 32 {
					v = a >> b
				}
			} else {
				if b >= 32 {
					b = 31
				}
				v = u32(i32(a) >> b)
			}
			t.Regs[dst] = v
		}
	case pcLOP:
		logic := p.logic
		for m := exec; m != 0; m &= m - 1 {
			t := w.Threads[bits.TrailingZeros32(m)]
			t.DynInstrs++
			a, b := ls.c0, ls.c1
			if ls.r0 >= 0 {
				a = t.Regs[ls.r0]
			}
			if ls.r1 >= 0 {
				b = t.Regs[ls.r1]
			}
			var v uint32
			switch logic {
			case sass.LogicAND:
				v = a & b
			case sass.LogicOR:
				v = a | b
			case sass.LogicXOR:
				v = a ^ b
			case sass.LogicPASS:
				v = b
			case sass.LogicNOT:
				v = ^b
			}
			t.Regs[dst] = v
		}
	case pcFADD:
		neg := p.negB
		for m := exec; m != 0; m &= m - 1 {
			t := w.Threads[bits.TrailingZeros32(m)]
			t.DynInstrs++
			a, b := ls.c0, ls.c1
			if ls.r0 >= 0 {
				a = t.Regs[ls.r0]
			}
			if ls.r1 >= 0 {
				b = t.Regs[ls.r1]
			}
			fb := f32(b)
			if neg {
				fb = -fb
			}
			t.Regs[dst] = f32b(f32(a) + fb)
		}
	case pcFMUL:
		neg := p.negB
		for m := exec; m != 0; m &= m - 1 {
			t := w.Threads[bits.TrailingZeros32(m)]
			t.DynInstrs++
			a, b := ls.c0, ls.c1
			if ls.r0 >= 0 {
				a = t.Regs[ls.r0]
			}
			if ls.r1 >= 0 {
				b = t.Regs[ls.r1]
			}
			fb := f32(b)
			if neg {
				fb = -fb
			}
			t.Regs[dst] = f32b(f32(a) * fb)
		}
	case pcFFMA:
		for m := exec; m != 0; m &= m - 1 {
			t := w.Threads[bits.TrailingZeros32(m)]
			t.DynInstrs++
			a, b, c := ls.c0, ls.c1, ls.c2
			if ls.r0 >= 0 {
				a = t.Regs[ls.r0]
			}
			if ls.r1 >= 0 {
				b = t.Regs[ls.r1]
			}
			if ls.r2 >= 0 {
				c = t.Regs[ls.r2]
			}
			t.Regs[dst] = f32b(f32(a)*f32(b) + f32(c))
		}
	case pcMUFU:
		fn := p.mufu
		for m := exec; m != 0; m &= m - 1 {
			t := w.Threads[bits.TrailingZeros32(m)]
			t.DynInstrs++
			a := ls.c0
			if ls.r0 >= 0 {
				a = t.Regs[ls.r0]
			}
			t.Regs[dst] = f32b(float32(mufuEval(fn, float64(f32(a)))))
		}
	default:
		return false
	}
	return true
}

// execPreSetp executes ISETP/FSETP with the operand fetch plan hoisted;
// the compare and combine switches stay in the loop but are perfectly
// predicted (the modifiers are loop-invariant).
func (e *engine) execPreSetp(w *Warp, p *preInstr, exec uint32) {
	var ls laneSrcs
	if !e.resolveLaneSrcs(p, &ls, 2) {
		for m := exec; m != 0; m &= m - 1 {
			t := w.Threads[bits.TrailingZeros32(m)]
			t.DynInstrs++
			v, vq := e.setpCompute(t, p)
			t.WritePred(p.dstP, v)
			if p.dstQ != sass.PT {
				t.WritePred(p.dstQ, vq)
			}
		}
		return
	}
	sel := &p.srcs[2]
	fsetp := p.class == pcFSETP
	for m := exec; m != 0; m &= m - 1 {
		t := w.Threads[bits.TrailingZeros32(m)]
		t.DynInstrs++
		a, b := ls.c0, ls.c1
		if ls.r0 >= 0 {
			a = t.Regs[ls.r0]
		}
		if ls.r1 >= 0 {
			b = t.Regs[ls.r1]
		}
		cmp := setpCmp(a, b, fsetp, p.unsigned, p.cmp)
		c := t.guardPasses(sel.reg, sel.neg)
		var v, vq bool
		switch p.logic {
		case sass.LogicAND:
			v, vq = cmp && c, !cmp && c
		case sass.LogicOR:
			v, vq = cmp || c, !cmp || c
		case sass.LogicXOR:
			v, vq = cmp != c, !cmp != c
		default:
			v, vq = cmp, !cmp
		}
		t.WritePred(p.dstP, v)
		if p.dstQ != sass.PT {
			t.WritePred(p.dstQ, vq)
		}
	}
}

// setpCmp evaluates the SETP comparison for one lane (the compare leg of
// setpCompute).
func setpCmp(a, b uint32, fsetp, unsigned bool, op sass.CmpOp) bool {
	if fsetp {
		fa, fb := f32(a), f32(b)
		switch op {
		case sass.CmpLT:
			return fa < fb
		case sass.CmpLE:
			return fa <= fb
		case sass.CmpGT:
			return fa > fb
		case sass.CmpGE:
			return fa >= fb
		case sass.CmpEQ:
			return fa == fb
		case sass.CmpNE:
			return fa != fb
		}
		return false
	}
	if unsigned {
		switch op {
		case sass.CmpLT:
			return a < b
		case sass.CmpLE:
			return a <= b
		case sass.CmpGT:
			return a > b
		case sass.CmpGE:
			return a >= b
		case sass.CmpEQ:
			return a == b
		case sass.CmpNE:
			return a != b
		}
		return false
	}
	sa, sb := i32(a), i32(b)
	switch op {
	case sass.CmpLT:
		return sa < sb
	case sass.CmpLE:
		return sa <= sb
	case sass.CmpGT:
		return sa > sb
	case sass.CmpGE:
		return sa >= sb
	case sass.CmpEQ:
		return sa == sb
	case sass.CmpNE:
		return sa != sb
	}
	return false
}

// execPreIADDC is the CC-carrying IADD lane loop (execALULane's IADD
// case with .X/.CC honored): consume the carry bit when pfX is set, and
// recompute the full condition code when pfSetCC is set. CC state is
// per-lane, so there is no uniform broadcast for this class.
func (e *engine) execPreIADDC(w *Warp, p *preInstr, exec uint32) {
	var ls laneSrcs
	fast := e.resolveLaneSrcs(p, &ls, 2)
	setCC := p.flags&pfSetCC != 0
	useX := p.flags&pfX != 0
	neg := p.negB
	for m := exec; m != 0; m &= m - 1 {
		t := w.Threads[bits.TrailingZeros32(m)]
		t.DynInstrs++
		var a, b uint32
		if fast {
			a, b = ls.c0, ls.c1
			if ls.r0 >= 0 {
				a = t.Regs[ls.r0]
			}
			if ls.r1 >= 0 {
				b = t.Regs[ls.r1]
			}
		} else {
			a = e.preSrcU32(t, &p.srcs[0])
			b = e.preSrcU32(t, &p.srcs[1])
		}
		if neg {
			b = -b
		}
		sum := uint64(a) + uint64(b)
		if useX && t.CC&CCCarry != 0 {
			sum++
		}
		r := uint32(sum)
		if setCC {
			t.CC = 0
			if r == 0 {
				t.CC |= CCZero
			}
			if int32(r) < 0 {
				t.CC |= CCSign
			}
			if sum>>32 != 0 {
				t.CC |= CCCarry
			}
			if (a^b)&0x8000_0000 == 0 && (a^r)&0x8000_0000 != 0 {
				t.CC |= CCOvf
			}
		}
		t.WriteReg(p.dst, r)
	}
}

// execPrePSETP is the predicate-logic lane loop (execALULane's PSETP
// case): combine two source predicates and write the primary destination
// only, as the interpreter does.
func (e *engine) execPrePSETP(w *Warp, p *preInstr, exec uint32) {
	sa, sb := &p.srcs[0], &p.srcs[1]
	for m := exec; m != 0; m &= m - 1 {
		t := w.Threads[bits.TrailingZeros32(m)]
		t.DynInstrs++
		a := t.guardPasses(sa.reg, sa.neg)
		b := t.guardPasses(sb.reg, sb.neg)
		var v bool
		switch p.logic {
		case sass.LogicAND:
			v = a && b
		case sass.LogicOR:
			v = a || b
		case sass.LogicXOR:
			v = a != b
		default:
			v = a
		}
		t.WritePred(p.dstP, v)
	}
}

// execPreBRA is execBranch with the label target resolved at predecode.
func (e *engine) execPreBRA(w *Warp, taken uint32, target int32) {
	fall := w.Active &^ taken
	switch {
	case taken == 0:
		w.PC++
	case fall == 0:
		w.PC = int(target)
	default:
		// Divergence: defer the fall-through lanes, run the taken path.
		w.Stack = append(w.Stack, divEntry{kind: divDEF, pc: w.PC + 1, mask: fall})
		w.Active = taken
		w.PC = int(target)
		e.sms[w.CTA.SM].divergentBranches++
	}
}

// preLaneAddr computes the effective address of the memory operand for
// one lane (laneAddr over predecoded fields).
func (e *engine) preLaneAddr(t *Thread, p *preInstr) uint64 {
	var base uint64
	if p.memBase != sass.RZ {
		if p.memE {
			base = t.ReadReg64(p.memBase)
		} else {
			base = uint64(t.Regs[p.memBase])
		}
	}
	return base + uint64(p.memOff)
}

// execPreMem dispatches the specialized memory classes.
func (e *engine) execPreMem(w *Warp, p *preInstr, exec uint32) (int, error) {
	if exec == 0 {
		return 1, nil
	}
	switch p.class {
	case pcMemS:
		return e.execPreShared(w, p, exec)
	case pcMemL:
		return e.execPreLocal(w, p, exec)
	}
	return e.execPreGeneric(w, p, exec)
}

// execPreShared is execShared with resolved operands and a 32-bit fast
// path that skips the staging buffer.
func (e *engine) execPreShared(w *Warp, p *preInstr, exec uint32) (int, error) {
	sh := w.CTA.Shared
	if p.nbytes == 4 {
		if p.store {
			for m := exec; m != 0; m &= m - 1 {
				t := w.Threads[bits.TrailingZeros32(m)]
				if err := sh.Write32(e.preLaneAddr(t, p), t.ReadReg(p.dataReg)); err != nil {
					return 2, err
				}
			}
		} else {
			for m := exec; m != 0; m &= m - 1 {
				t := w.Threads[bits.TrailingZeros32(m)]
				v, err := sh.Read32(e.preLaneAddr(t, p))
				if err != nil {
					return 2, err
				}
				t.WriteReg(p.dst, v)
			}
		}
		return 2, nil
	}
	var buf [16]byte
	nbytes := int(p.nbytes)
	for m := exec; m != 0; m &= m - 1 {
		t := w.Threads[bits.TrailingZeros32(m)]
		off := e.preLaneAddr(t, p)
		if p.store {
			storeFromRegs(t, p.dataReg, buf[:], p.width)
			if err := sh.Write(off, buf[:nbytes]); err != nil {
				return 2, err
			}
		} else {
			if err := sh.Read(off, buf[:nbytes]); err != nil {
				return 2, err
			}
			loadIntoRegs(t, p.dst, buf[:], p.width)
		}
	}
	return 2, nil
}

// execPreLocal is execLocal with resolved operands.
func (e *engine) execPreLocal(w *Warp, p *preInstr, exec uint32) (int, error) {
	var buf [16]byte
	nbytes := int(p.nbytes)
	total := 0
	for m := exec; m != 0; m &= m - 1 {
		t := w.Threads[bits.TrailingZeros32(m)]
		off := e.preLaneAddr(t, p)
		if p.store {
			storeFromRegs(t, p.dataReg, buf[:], p.width)
			if err := t.Local.Write(off, buf[:nbytes]); err != nil {
				return 0, err
			}
		} else {
			if err := t.Local.Read(off, buf[:nbytes]); err != nil {
				return 0, err
			}
			loadIntoRegs(t, p.dst, buf[:], p.width)
		}
		total += nbytes
	}
	lines := (total + int(e.dev.Cfg.CoalesceBytes) - 1) / int(e.dev.Cfg.CoalesceBytes)
	return 4 + lines, nil
}

// execPreGeneric is execGeneric's all-lanes-global fast path: one batched
// device-memory access per warp instead of three lock acquisitions per
// lane. Any lane decoding to a non-global space falls back to the classic
// path before any state is touched, so mixed-space accesses and
// forced-global faults behave identically.
func (e *engine) execPreGeneric(w *Warp, p *preInstr, exec uint32) (int, error) {
	st := &e.sms[w.CTA.SM]
	op := &st.warpOp
	op.N = 0
	op.Width = int(p.nbytes)
	op.Store = p.store
	var lanes [WarpSize]uint8
	var access mem.Access
	access.Width = int(p.nbytes)
	access.Store = p.store
	for m := exec; m != 0; m &= m - 1 {
		l := bits.TrailingZeros32(m)
		t := w.Threads[l]
		t.DynInstrs++
		addr := e.preLaneAddr(t, p)
		if !mem.IsGlobal(addr) {
			// pcMemG folds the DynInstrs pass into this loop; finish the
			// remaining lanes before handing the instruction to the
			// classic path, which expects the pass already done.
			for m2 := m & (m - 1); m2 != 0; m2 &= m2 - 1 {
				w.Threads[bits.TrailingZeros32(m2)].DynInstrs++
			}
			return e.execOpMemFallback(w, p, exec)
		}
		access.Addrs[l] = addr
		access.Active |= 1 << l
		op.Addrs[op.N] = addr
		lanes[op.N] = uint8(l)
		op.N++
	}
	if p.store {
		for i := 0; i < op.N; i++ {
			storeFromRegs(w.Threads[lanes[i]], p.dataReg, op.Data[i][:], p.width)
		}
	}
	nOK, err := e.dev.Global.AccessWarp(op)
	if !p.store {
		for i := 0; i < nOK; i++ {
			loadIntoRegs(w.Threads[lanes[i]], p.dst, op.Data[i][:], p.width)
		}
	}
	if err != nil {
		return 0, err
	}
	e.dev.Coal.CoalesceInto(&access, &st.coalRes)
	res := &st.coalRes
	st.globalTransactions += uint64(res.UniqueLines())
	cost := st.hier.AccessLines(res.Lines, p.store)
	if e.dev.MemWatch != nil {
		// Res aliases the SM's reusable line buffer; observers copy what
		// they keep (see Device.MemWatch).
		e.dev.MemWatch(MemAccess{
			PC: w.PC, SM: w.CTA.SM,
			Warp:  w.CTA.Index*len(w.CTA.Warps) + w.IDinCTA,
			Store: p.store, Res: *res,
		})
	}
	return cost, nil
}

// execOpMemFallback reruns a specialized memory instruction through the
// classic interpreter path (mixed address spaces, forced-global faults).
// No state has been modified when it is called.
func (e *engine) execOpMemFallback(w *Warp, p *preInstr, exec uint32) (int, error) {
	return e.execMem(w, &e.k.Instrs[w.PC], exec)
}

// runWarpSolo runs w until it completes or reaches a barrier, dispatching
// per predecoded basic-block run: after the instruction at the head of a
// straight-line run, the rest of the run executes with no Done/AtBarrier
// re-checks, which is sound because straight-line instructions always
// advance PC+1 and can neither block the warp nor redirect control. Legal
// only when w is the SM's sole live warp with no pending CTAs — then no
// other warp can observe the departure from one-instruction-per-sweep
// interleaving, and every per-instruction accounting effect (cycles,
// samples, watchdog) is produced by stepPre exactly as in sweep order.
func (e *engine) runWarpSolo(w *Warp) error {
	for !w.Done && !w.AtBarrier {
		n := uint16(1)
		if w.PC >= 0 && w.PC < len(e.pre.ins) {
			n = e.pre.ins[w.PC].run
		}
		for ; n > 0; n-- {
			if err := e.stepPre(w); err != nil {
				return err
			}
		}
	}
	return nil
}
