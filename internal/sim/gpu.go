// Package sim is a SIMT GPU simulator: it executes SASS programs
// (internal/sass) over a device model with streaming multiprocessors,
// 32-lane warps, a stack-based divergence/reconvergence mechanism, CTA-wide
// barriers, predication, and the memory hierarchy of internal/mem.
//
// The simulator is functional-first (architecturally visible state is
// exact) with a cycle-approximate timing model used only for relative
// comparisons such as the paper's Table 3 overhead ratios.
package sim

import (
	"fmt"
	"sync"

	"sassi/internal/mem"
	"sassi/internal/obs"
	"sassi/internal/obs/pcsamp"
)

// WarpSize is the number of threads per warp (fixed, as on NVIDIA parts).
const WarpSize = 32

// Config describes the simulated GPU.
type Config struct {
	Name string

	NumSMs          int
	MaxCTAsPerSM    int
	MaxThreadsPerSM int
	SharedPerSM     int // bytes

	// Memory system.
	L1Bytes   uint64 // 0 disables L1 (global accesses go straight to L2)
	L1Line    uint64
	L1Ways    int
	L1Latency int
	L2Bytes   uint64
	L2Line    uint64
	L2Ways    int
	L2Latency int
	DRAMLat   int

	// CoalesceBytes is the address-divergence granularity (paper: 32B).
	CoalesceBytes uint64

	// WatchdogWarpInstrs aborts a warp (as a hang) after this many dynamic
	// instructions. Zero means a generous default.
	WatchdogWarpInstrs uint64

	// HandlerBodyCost is the cycle charge for one instrumentation-handler
	// body invocation (the Go handler stands in for compiled CUDA whose
	// instructions the simulator cannot count directly). The ABI setup and
	// spill code around the call is real SASS and is charged exactly.
	HandlerBodyCost int

	// DefaultStackBytes is the per-thread local memory size when a kernel
	// does not request more.
	DefaultStackBytes int

	// SequentialSMs forces the launch engine to simulate SMs one after
	// another on the calling goroutine instead of one goroutine per SM.
	// Results are bit-equal either way; this is an escape hatch for
	// debugging and the reference mode the equivalence tests compare
	// against.
	SequentialSMs bool

	// Engine selects the execution engine. All engines are bit-equal; they
	// differ only in speed. EngineConcurrent (the zero value) and
	// EngineSequential are the classic interpreter with parallel or
	// serialized SMs (EngineSequential implies SequentialSMs).
	// EnginePredecoded predecodes each kernel at first launch and runs the
	// block-dispatch interpreter with the uniform-warp fast path; it
	// composes with SequentialSMs for SM dispatch.
	Engine Engine
}

// Engine identifies one of the simulator's execution engines.
type Engine int

// Execution engines.
const (
	// EngineConcurrent is the classic interpreter, one goroutine per SM.
	EngineConcurrent Engine = iota
	// EngineSequential is the classic interpreter with SMs simulated one
	// after another on the calling goroutine (the reference engine the
	// equivalence tests compare against).
	EngineSequential
	// EnginePredecoded is the predecoded block-dispatch engine.
	EnginePredecoded
)

func (e Engine) String() string {
	switch e {
	case EngineConcurrent:
		return "concurrent"
	case EngineSequential:
		return "sequential"
	case EnginePredecoded:
		return "predecoded"
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// ParseEngine converts an engine-selection flag value to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "concurrent", "":
		return EngineConcurrent, nil
	case "sequential":
		return EngineSequential, nil
	case "predecoded":
		return EnginePredecoded, nil
	}
	return 0, fmt.Errorf("unknown engine %q (want concurrent, sequential, or predecoded)", s)
}

// KeplerK10 approximates the paper's Tesla K10 G2 target (case studies
// I-III ran there).
func KeplerK10() Config {
	return Config{
		Name:   "tesla-k10-sim",
		NumSMs: 8, MaxCTAsPerSM: 16, MaxThreadsPerSM: 2048, SharedPerSM: 48 << 10,
		L1Bytes: 16 << 10, L1Line: 128, L1Ways: 4, L1Latency: 30,
		L2Bytes: 512 << 10, L2Line: 128, L2Ways: 16, L2Latency: 160,
		DRAMLat: 300, CoalesceBytes: 32,
		WatchdogWarpInstrs: 200_000_000,
		HandlerBodyCost:    32,
		DefaultStackBytes:  4096,
	}
}

// KeplerK20 approximates the Tesla K20 used by the error-injection study.
func KeplerK20() Config {
	c := KeplerK10()
	c.Name = "tesla-k20-sim"
	c.NumSMs = 13
	c.L2Bytes = 1280 << 10
	return c
}

// KeplerK40 approximates the Tesla K40m used for the Table 3 overhead runs.
func KeplerK40() Config {
	c := KeplerK10()
	c.Name = "tesla-k40-sim"
	c.NumSMs = 15
	c.L2Bytes = 1536 << 10
	return c
}

// MiniGPU is a small configuration for unit tests.
func MiniGPU() Config {
	c := KeplerK10()
	c.Name = "mini-sim"
	c.NumSMs = 2
	c.MaxCTAsPerSM = 4
	return c
}

func (c *Config) normalize() {
	if c.NumSMs <= 0 {
		c.NumSMs = 1
	}
	if c.MaxCTAsPerSM <= 0 {
		c.MaxCTAsPerSM = 8
	}
	if c.MaxThreadsPerSM <= 0 {
		c.MaxThreadsPerSM = 2048
	}
	if c.SharedPerSM <= 0 {
		c.SharedPerSM = 48 << 10
	}
	if c.CoalesceBytes == 0 {
		c.CoalesceBytes = 32
	}
	if c.WatchdogWarpInstrs == 0 {
		c.WatchdogWarpInstrs = 200_000_000
	}
	if c.HandlerBodyCost == 0 {
		c.HandlerBodyCost = 32
	}
	if c.DefaultStackBytes == 0 {
		c.DefaultStackBytes = 4096
	}
	if c.L2Bytes == 0 {
		c.L2Bytes = 512 << 10
	}
	if c.L2Line == 0 {
		c.L2Line = 128
	}
	if c.L2Ways == 0 {
		c.L2Ways = 16
	}
}

// Device is one simulated GPU: configuration, device memory, and the
// memory hierarchy. The L2 is modeled as banked: each SM owns one slice
// (L2s[i]) holding an equal share of the configured capacity, and each
// slice drains into its own DRAM channel (DRAMs[i]). Every hierarchy
// level an SM touches is therefore private to that SM's goroutine, which
// is what lets SMs execute in parallel while keeping cache statistics a
// pure function of the per-SM access stream — bit-equal no matter how
// the goroutines interleave.
type Device struct {
	Cfg    Config
	Global *mem.Global
	L2s    []*mem.Cache
	DRAMs  []*mem.DRAM
	L1s    []*mem.Cache
	Coal   *mem.Coalescer

	// Dispatcher executes JCAL'd instrumentation handlers. Nil means any
	// JCAL faults (no handlers linked). Implementations must tolerate
	// concurrent calls from different SM goroutines.
	Dispatcher Dispatcher

	// MemWatch, when non-nil, observes every warp-level global memory
	// access after coalescing (trace export, §9.4 "driving other
	// simulators"). Setting it forces sequential SM execution so the
	// recorded event order is deterministic. ev.Res may alias an engine
	// buffer reused on the next access: observers must copy ev.Res.Lines
	// if they keep it past the callback.
	MemWatch func(ev MemAccess)

	// Metrics, when non-nil, receives the launch's counters at kernel
	// exit: per-SM issue/stall/divergence sharded counters and per-level
	// memory-hierarchy gauges. The warp-issue hot path never touches it —
	// counts accumulate in per-SM shard fields and are published once per
	// launch, so a nil registry costs nothing and a non-nil one merges
	// order-independently (bit-equal parallel vs sequential).
	Metrics *obs.Registry

	// Trace, when non-nil, records device-lane spans (per-SM kernel and
	// CTA spans, handler-dispatch spans) on the obs timeline. Span
	// timestamps are modeled cycles offset by a per-device base so
	// successive launches stack instead of overlapping.
	Trace *obs.Tracer

	// PCSamp, when non-nil, attaches the cycle-cadence PC-sampling
	// profiler to every launch: the warp whose issue+stall window crosses
	// a multiple of the sampling period records (PC, warp, active lanes,
	// stall reason, call stack) into its SM's single-writer ring buffer.
	// Buffers merge order-independently at launch end, so profiles are
	// bit-identical between the sequential and concurrent engines, and
	// the hot path allocates nothing (same discipline as Metrics).
	PCSamp *pcsamp.Sampler

	// CTARetire, when non-nil, observes every CTA at retirement, after its
	// last warp exits and before its state is discarded (the differential
	// harness snapshots final register files, shared and local memory
	// here). Called from SM goroutines, so implementations must tolerate
	// concurrent calls; CTA.Index identifies the block deterministically.
	CTARetire func(cta *CTA)

	traceMu        sync.Mutex
	traceNamed     bool
	traceCycleBase uint64

	// pre caches predecoded kernels for the predecoded engine (keyed by
	// kernel pointer; kernels are immutable after compilation).
	pre preCache
}

// MemAccess is one observed warp-level memory transaction set, tagged with
// the SM and (launch-global) warp that issued it so traces can be
// correlated with per-SM timelines.
type MemAccess struct {
	PC int
	// SM is the streaming multiprocessor the warp ran on.
	SM int
	// Warp is the launch-global warp id: CTA index times warps-per-CTA
	// plus the warp's index within its CTA.
	Warp  int
	Store bool
	Res   mem.Result
}

// traceBase reserves the device-timeline window for a launch expected to
// span cycles, returning the window's base cycle.
func (d *Device) traceBase() uint64 {
	d.traceMu.Lock()
	defer d.traceMu.Unlock()
	return d.traceCycleBase
}

// traceAdvance moves the device timeline past a completed launch.
func (d *Device) traceAdvance(cycles uint64) {
	d.traceMu.Lock()
	d.traceCycleBase += cycles
	d.traceMu.Unlock()
}

// nameTraceLanes emits the one-time lane metadata for this device.
func (d *Device) nameTraceLanes() {
	d.traceMu.Lock()
	defer d.traceMu.Unlock()
	if d.traceNamed {
		return
	}
	d.traceNamed = true
	d.Trace.NameProcess(obs.PidDevice, d.Cfg.Name+" (cycles)")
	for sm := 0; sm < d.Cfg.NumSMs; sm++ {
		d.Trace.NameThread(obs.PidDevice, sm, fmt.Sprintf("SM %d", sm))
	}
}

// L1Stats returns the device-wide L1 statistics (sum over per-SM caches;
// zero when the configuration disables L1).
func (d *Device) L1Stats() mem.CacheStats {
	var s mem.CacheStats
	for _, c := range d.L1s {
		if c != nil {
			s.Add(c.Stats)
		}
	}
	return s
}

// Dispatcher runs an instrumentation handler for one warp at a call site.
type Dispatcher interface {
	// Dispatch executes handler handlerID for the active lanes of w.
	// The injected SASS has already marshalled arguments into the ABI
	// registers (R4..R7) of each active lane. Dispatch may be invoked
	// concurrently from different SM goroutines.
	Dispatch(dev *Device, w *Warp, handlerID int) error
}

// floorPow2 returns the largest power of two <= n (minimum 1).
func floorPow2(n uint64) uint64 {
	if n < 1 {
		return 1
	}
	p := uint64(1)
	for p<<1 <= n {
		p <<= 1
	}
	return p
}

// l2SliceBytes returns the capacity of one SM's L2 slice. The total set
// count is split evenly across SMs and rounded down to a power of two
// (NumSMs values like 13 or 15 don't divide it exactly; the cache model
// wants power-of-two sets).
func l2SliceBytes(cfg *Config) uint64 {
	totalSets := cfg.L2Bytes / (uint64(cfg.L2Ways) * cfg.L2Line)
	sliceSets := floorPow2(totalSets / uint64(cfg.NumSMs))
	return sliceSets * uint64(cfg.L2Ways) * cfg.L2Line
}

// NewDevice builds a device from a config.
func NewDevice(cfg Config) *Device {
	cfg.normalize()
	d := &Device{
		Cfg:    cfg,
		Global: mem.NewGlobal(),
		Coal:   mem.NewCoalescer(cfg.CoalesceBytes),
	}
	slice := l2SliceBytes(&cfg)
	d.L2s = make([]*mem.Cache, cfg.NumSMs)
	d.DRAMs = make([]*mem.DRAM, cfg.NumSMs)
	d.L1s = make([]*mem.Cache, cfg.NumSMs)
	for i := range d.L1s {
		d.L2s[i] = mem.NewCache(fmt.Sprintf("L2.%d", i), slice, cfg.L2Line, cfg.L2Ways)
		d.DRAMs[i] = &mem.DRAM{LatencyCycles: cfg.DRAMLat}
		if cfg.L1Bytes > 0 {
			d.L1s[i] = mem.NewCache(fmt.Sprintf("L1.%d", i), cfg.L1Bytes, cfg.L1Line, cfg.L1Ways)
		}
	}
	return d
}

// L2Stats returns the device-wide L2 statistics: the order-independent sum
// over the per-SM slices.
func (d *Device) L2Stats() mem.CacheStats {
	var s mem.CacheStats
	for _, c := range d.L2s {
		s.Add(c.Stats)
	}
	return s
}

// DRAMTransactions returns total DRAM traffic across all channels.
func (d *Device) DRAMTransactions() uint64 {
	var n uint64
	for _, ch := range d.DRAMs {
		n += ch.Transactions
	}
	return n
}

// Alloc reserves device memory (cudaMalloc analog).
func (d *Device) Alloc(size uint64, name string) uint64 { return d.Global.Alloc(size, name) }

// KernelStats reports what one launch executed and (approximately) cost.
type KernelStats struct {
	Kernel string

	// WarpInstrs counts warp-level instruction issues; ThreadInstrs counts
	// per-lane executions (guard-enabled lanes only).
	WarpInstrs   uint64
	ThreadInstrs uint64

	// InjectedWarpInstrs/InjectedThreadInstrs count only instructions the
	// SASSI instrumentor inserted, so overhead can be attributed.
	InjectedWarpInstrs   uint64
	InjectedThreadInstrs uint64

	// HandlerCalls counts instrumentation-handler invocations (warp level).
	HandlerCalls uint64

	// MaxWarpInstrs is the largest dynamic instruction count any single
	// warp executed (used to calibrate fault-campaign watchdogs).
	MaxWarpInstrs uint64

	// GlobalTransactions counts coalesced global-memory line transactions.
	GlobalTransactions uint64

	// ScoreboardStalls is the total cycles warps spent stalled on
	// register read-after-write/write-after-write hazards (the per-warp
	// scoreboard model). It is the reward signal the SASS scheduling
	// autotuner minimizes.
	ScoreboardStalls uint64

	// Cycles is the modeled kernel duration: the maximum busy-cycle count
	// across SMs.
	Cycles uint64
	// SMCycles holds the per-SM busy cycles.
	SMCycles []uint64

	// CTAs and Threads record the launch geometry.
	CTAs    int
	Threads int
}

// ErrKind classifies how a kernel ended.
type ErrKind int

// Kernel termination kinds.
const (
	ErrNone     ErrKind = iota
	ErrMemFault         // illegal address (paper: crash)
	ErrHang             // watchdog fired
	ErrInvalid          // illegal instruction / simulator limit
	ErrAssert           // device-side assertion (workload-defined)
)

func (k ErrKind) String() string {
	switch k {
	case ErrNone:
		return "ok"
	case ErrMemFault:
		return "memory fault"
	case ErrHang:
		return "hang"
	case ErrInvalid:
		return "invalid operation"
	case ErrAssert:
		return "device assert"
	}
	return "unknown"
}

// KernelError is the launch-failure analog of a CUDA error status.
type KernelError struct {
	Kind   ErrKind
	Kernel string
	Detail string
}

func (e *KernelError) Error() string {
	return fmt.Sprintf("kernel %s: %s: %s", e.Kernel, e.Kind, e.Detail)
}
