package sim_test

import (
	"math"
	"testing"

	"sassi/internal/ptx"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	"sassi/internal/sim"
)

// buildVecAdd constructs: out[i] = a[i] + b[i] for i < n.
func buildVecAdd(t *testing.T) *sass.Program {
	t.Helper()
	b := ptx.NewKernel("vecadd")
	a := b.ParamU64("a")
	bb := b.ParamU64("b")
	out := b.ParamU64("out")
	n := b.ParamU32("n")
	i := b.GlobalTidX()
	inRange := b.Setp(sass.CmpLT, i, n)
	b.If(inRange, func() {
		av := b.LdGlobalF32(b.Index(a, i, 2), 0)
		bv := b.LdGlobalF32(b.Index(bb, i, 2), 0)
		b.StGlobalF32(b.Index(out, i, 2), 0, b.Add(av, bv))
	})
	b.Exit()
	f, err := b.Done()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	m := ptx.NewModule()
	m.Add(f)
	prog, err := ptxas.Compile(m, ptxas.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func TestVecAddEndToEnd(t *testing.T) {
	prog := buildVecAdd(t)
	dev := sim.NewDevice(sim.MiniGPU())

	const n = 1000
	aBuf := dev.Alloc(4*n, "a")
	bBuf := dev.Alloc(4*n, "b")
	oBuf := dev.Alloc(4*n, "out")
	for i := 0; i < n; i++ {
		dev.Global.Write32(aBuf+uint64(4*i), math.Float32bits(float32(i)))
		dev.Global.Write32(bBuf+uint64(4*i), math.Float32bits(float32(2*i)))
	}
	stats, err := dev.Launch(prog, "vecadd", sim.LaunchParams{
		Grid:  sim.D1((n + 127) / 128),
		Block: sim.D1(128),
		Args:  []uint64{aBuf, bBuf, oBuf, n},
	})
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	if stats.Threads != 1024 {
		t.Errorf("threads = %d, want 1024", stats.Threads)
	}
	if stats.WarpInstrs == 0 || stats.Cycles == 0 {
		t.Errorf("expected nonzero instruction and cycle counts: %+v", stats)
	}
	for i := 0; i < n; i++ {
		bits, err := dev.Global.Read32(oBuf + uint64(4*i))
		if err != nil {
			t.Fatalf("read out[%d]: %v", i, err)
		}
		got := math.Float32frombits(bits)
		want := float32(3 * i)
		if got != want {
			t.Fatalf("out[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestVecAddDisassembles(t *testing.T) {
	prog := buildVecAdd(t)
	k, _ := prog.Kernel("vecadd")
	dis := k.Disassemble()
	if len(dis) == 0 {
		t.Fatal("empty disassembly")
	}
	t.Logf("vecadd SASS:\n%s", dis)
}
