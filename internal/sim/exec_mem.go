package sim

import (
	"encoding/binary"
	"fmt"

	"sassi/internal/mem"
	"sassi/internal/sass"
)

// laneAddr computes the effective byte address of a memory operand for one
// lane. For generic/global ops the result is a generic address; for
// LDL/STL/LDS/STS it is a space-relative offset.
func (e *engine) laneAddr(t *Thread, in *sass.Instruction, ref sass.Operand) uint64 {
	var base uint64
	if ref.Reg != sass.RZ {
		if in.Mods.E {
			base = t.ReadReg64(ref.Reg)
		} else {
			base = uint64(t.ReadReg(ref.Reg))
		}
	}
	return base + uint64(ref.Imm)
}

// memRef locates the memory-reference operand of a memory instruction.
func memRef(in *sass.Instruction) (sass.Operand, error) {
	for _, s := range in.Srcs {
		if s.Kind == sass.OpdMem {
			return s, nil
		}
	}
	return sass.Operand{}, fmt.Errorf("%s: no memory operand", in.Op)
}

// loadIntoRegs writes a loaded buffer into the destination register(s).
func loadIntoRegs(t *Thread, dst uint8, buf []byte, width sass.Width) {
	switch width {
	case sass.W8:
		t.WriteReg(dst, uint32(buf[0]))
	case sass.W16:
		t.WriteReg(dst, uint32(binary.LittleEndian.Uint16(buf)))
	default:
		n := width.Regs()
		for i := 0; i < n; i++ {
			t.WriteReg(dst+uint8(i), binary.LittleEndian.Uint32(buf[i*4:]))
		}
	}
}

// storeFromRegs gathers the store data register(s) into a buffer.
func storeFromRegs(t *Thread, src uint8, buf []byte, width sass.Width) {
	switch width {
	case sass.W8:
		buf[0] = byte(t.ReadReg(src))
	case sass.W16:
		binary.LittleEndian.PutUint16(buf, uint16(t.ReadReg(src)))
	default:
		n := width.Regs()
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], t.ReadReg(src+uint8(i)))
		}
	}
}

// execMem executes a memory instruction and returns its modeled cost.
func (e *engine) execMem(w *Warp, in *sass.Instruction, exec uint32) (int, error) {
	if exec == 0 {
		return 1, nil
	}
	width := in.Mods.Width
	nbytes := width.Bytes()

	switch in.Op {
	case sass.OpLDC:
		ref, err := memRef(in)
		if err != nil {
			return 0, err
		}
		var lerr error
		Lanes(exec, func(l int) {
			if lerr != nil {
				return
			}
			t := w.Threads[l]
			off := int64(e.laneAddr(t, in, ref))
			n := width.Regs()
			for i := 0; i < n; i++ {
				v, err := e.cbRead32(off + int64(i*4))
				if err != nil {
					lerr = err
					return
				}
				t.WriteReg(in.Dsts[0].Reg+uint8(i), v)
			}
		})
		return 1, lerr

	case sass.OpLDL, sass.OpSTL:
		return e.execLocal(w, in, exec, width, nbytes)

	case sass.OpLDS, sass.OpSTS:
		return e.execShared(w, in, exec, width, nbytes)

	case sass.OpATOMS:
		return e.execAtomicShared(w, in, exec)

	case sass.OpATOM, sass.OpRED:
		return e.execAtomicGlobal(w, in, exec)

	case sass.OpLD, sass.OpST, sass.OpLDG, sass.OpSTG, sass.OpTLD:
		return e.execGeneric(w, in, exec, width, nbytes)
	}
	return 0, fmt.Errorf("unhandled memory op %s", in.Op)
}

// execLocal handles LDL/STL. Local addresses are space-relative offsets;
// the hardware interleaves them per thread, so warp accesses to the same
// stack slot coalesce perfectly.
func (e *engine) execLocal(w *Warp, in *sass.Instruction, exec uint32, width sass.Width, nbytes int) (int, error) {
	ref, err := memRef(in)
	if err != nil {
		return 0, err
	}
	store := in.Op == sass.OpSTL
	var buf [16]byte
	var lerr error
	total := 0
	Lanes(exec, func(l int) {
		if lerr != nil {
			return
		}
		t := w.Threads[l]
		off := e.laneAddr(t, in, ref)
		if store {
			storeFromRegs(t, in.Srcs[srcDataIdx(in)].Reg, buf[:], width)
			lerr = t.Local.Write(off, buf[:nbytes])
		} else {
			if lerr = t.Local.Read(off, buf[:nbytes]); lerr == nil {
				loadIntoRegs(t, in.Dsts[0].Reg, buf[:], width)
			}
		}
		total += nbytes
	})
	if lerr != nil {
		return 0, lerr
	}
	// Perfectly coalesced: charge one slot per line's worth of data.
	lines := (total + int(e.dev.Cfg.CoalesceBytes) - 1) / int(e.dev.Cfg.CoalesceBytes)
	return 4 + lines, nil
}

// srcDataIdx finds the store-data operand index (the first register source
// that is not the address).
func srcDataIdx(in *sass.Instruction) int {
	for i, s := range in.Srcs {
		if s.Kind == sass.OpdReg {
			return i
		}
	}
	return len(in.Srcs) - 1
}

// execShared handles LDS/STS against the CTA scratchpad.
func (e *engine) execShared(w *Warp, in *sass.Instruction, exec uint32, width sass.Width, nbytes int) (int, error) {
	ref, err := memRef(in)
	if err != nil {
		return 0, err
	}
	store := in.Op == sass.OpSTS
	sh := w.CTA.Shared
	var buf [16]byte
	var lerr error
	Lanes(exec, func(l int) {
		if lerr != nil {
			return
		}
		t := w.Threads[l]
		off := e.laneAddr(t, in, ref)
		if store {
			storeFromRegs(t, in.Srcs[srcDataIdx(in)].Reg, buf[:], width)
			lerr = sh.Write(off, buf[:nbytes])
		} else {
			if lerr = sh.Read(off, buf[:nbytes]); lerr == nil {
				loadIntoRegs(t, in.Dsts[0].Reg, buf[:], width)
			}
		}
	})
	return 2, lerr
}

// execGeneric handles LD/ST/LDG/STG/TLD: generic addresses decoded per lane.
func (e *engine) execGeneric(w *Warp, in *sass.Instruction, exec uint32, width sass.Width, nbytes int) (int, error) {
	ref, err := memRef(in)
	if err != nil {
		return 0, err
	}
	store := in.Op == sass.OpST || in.Op == sass.OpSTG
	forceGlobal := in.Op == sass.OpLDG || in.Op == sass.OpSTG || in.Op == sass.OpTLD

	var access mem.Access
	access.Width = nbytes
	access.Store = store
	var buf [16]byte
	var lerr error
	Lanes(exec, func(l int) {
		if lerr != nil {
			return
		}
		t := w.Threads[l]
		addr := e.laneAddr(t, in, ref)
		space, off := mem.Decode(addr)
		if forceGlobal && space != mem.SpaceGlobal {
			lerr = &mem.Fault{Space: mem.SpaceGlobal, Addr: addr, Write: store,
				Why: fmt.Sprintf("%s requires a global address", in.Op)}
			return
		}
		switch space {
		case mem.SpaceGlobal:
			access.Addrs[l] = addr
			access.Active |= 1 << l
			if store {
				storeFromRegs(t, in.Srcs[srcDataIdx(in)].Reg, buf[:], width)
				lerr = e.dev.Global.Write(addr, buf[:nbytes])
			} else {
				if lerr = e.dev.Global.Read(addr, buf[:nbytes]); lerr == nil {
					loadIntoRegs(t, in.Dsts[0].Reg, buf[:], width)
				}
			}
		case mem.SpaceShared:
			if store {
				storeFromRegs(t, in.Srcs[srcDataIdx(in)].Reg, buf[:], width)
				lerr = w.CTA.Shared.Write(off, buf[:nbytes])
			} else {
				if lerr = w.CTA.Shared.Read(off, buf[:nbytes]); lerr == nil {
					loadIntoRegs(t, in.Dsts[0].Reg, buf[:], width)
				}
			}
		case mem.SpaceLocal:
			if store {
				storeFromRegs(t, in.Srcs[srcDataIdx(in)].Reg, buf[:], width)
				lerr = t.Local.Write(off, buf[:nbytes])
			} else {
				if lerr = t.Local.Read(off, buf[:nbytes]); lerr == nil {
					loadIntoRegs(t, in.Dsts[0].Reg, buf[:], width)
				}
			}
		default:
			lerr = &mem.Fault{Space: mem.SpaceInvalid, Addr: addr, Write: store,
				Why: "generic address maps to no space"}
		}
	})
	if lerr != nil {
		return 0, lerr
	}
	cost := 1
	if access.Active != 0 {
		res := e.dev.Coal.Coalesce(&access)
		st := &e.sms[w.CTA.SM]
		st.globalTransactions += uint64(res.UniqueLines())
		cost = st.hier.AccessLines(res.Lines, store)
		if e.dev.MemWatch != nil {
			e.dev.MemWatch(MemAccess{
				PC: w.PC, SM: w.CTA.SM,
				Warp:  w.CTA.Index*len(w.CTA.Warps) + w.IDinCTA,
				Store: store, Res: res,
			})
		}
	}
	return cost, nil
}

// execAtomicGlobal handles ATOM/RED: per-lane serialized RMW on global
// memory, ascending lane order.
func (e *engine) execAtomicGlobal(w *Warp, in *sass.Instruction, exec uint32) (int, error) {
	ref, err := memRef(in)
	if err != nil {
		return 0, err
	}
	wide := in.Mods.Width == sass.W64
	hasDst := in.Op == sass.OpATOM && len(in.Dsts) > 0 && in.Dsts[0].Kind == sass.OpdReg && in.Dsts[0].Reg != sass.RZ
	var access mem.Access
	access.Width = in.Mods.Width.Bytes()
	access.Store = true
	var lerr error
	Lanes(exec, func(l int) {
		if lerr != nil {
			return
		}
		t := w.Threads[l]
		addr := e.laneAddr(t, in, ref)
		if !mem.IsGlobal(addr) {
			lerr = &mem.Fault{Space: mem.SpaceGlobal, Addr: addr, Write: true,
				Why: "atomic requires a global address"}
			return
		}
		access.Addrs[l] = addr
		access.Active |= 1 << l
		di := srcDataIdx(in)
		if wide {
			b := t.ReadReg64(in.Srcs[di].Reg)
			var c uint64
			if in.Mods.Atom == sass.AtomCAS && di+1 < len(in.Srcs) {
				c = t.ReadReg64(in.Srcs[di+1].Reg)
			}
			old, err := e.dev.Global.Atomic64(addr, func(o uint64) uint64 {
				return atomApply64(in.Mods.Atom, o, b, c)
			})
			if err != nil {
				lerr = err
				return
			}
			if hasDst {
				t.WriteReg64(in.Dsts[0].Reg, old)
			}
		} else {
			b := t.ReadReg(in.Srcs[di].Reg)
			var c uint32
			if in.Mods.Atom == sass.AtomCAS && di+1 < len(in.Srcs) {
				c = t.ReadReg(in.Srcs[di+1].Reg)
			}
			old, err := e.dev.Global.Atomic32(addr, func(o uint32) uint32 {
				return atomApply32(in.Mods.Atom, o, b, c, in.Mods.Unsigned)
			})
			if err != nil {
				lerr = err
				return
			}
			if hasDst {
				t.WriteReg(in.Dsts[0].Reg, old)
			}
		}
	})
	if lerr != nil {
		return 0, lerr
	}
	cost := 1
	if access.Active != 0 {
		res := e.dev.Coal.Coalesce(&access)
		st := &e.sms[w.CTA.SM]
		st.globalTransactions += uint64(res.UniqueLines())
		cost = st.hier.AccessLines(res.Lines, true) + res.NumActive
	}
	return cost, nil
}

// execAtomicShared handles ATOMS on the CTA scratchpad.
func (e *engine) execAtomicShared(w *Warp, in *sass.Instruction, exec uint32) (int, error) {
	ref, err := memRef(in)
	if err != nil {
		return 0, err
	}
	hasDst := len(in.Dsts) > 0 && in.Dsts[0].Kind == sass.OpdReg && in.Dsts[0].Reg != sass.RZ
	var lerr error
	n := 0
	Lanes(exec, func(l int) {
		if lerr != nil {
			return
		}
		n++
		t := w.Threads[l]
		off := e.laneAddr(t, in, ref)
		old, err := w.CTA.Shared.Read32(off)
		if err != nil {
			lerr = err
			return
		}
		di := srcDataIdx(in)
		b := t.ReadReg(in.Srcs[di].Reg)
		var c uint32
		if in.Mods.Atom == sass.AtomCAS && di+1 < len(in.Srcs) {
			c = t.ReadReg(in.Srcs[di+1].Reg)
		}
		if err := w.CTA.Shared.Write32(off, atomApply32(in.Mods.Atom, old, b, c, in.Mods.Unsigned)); err != nil {
			lerr = err
			return
		}
		if hasDst {
			t.WriteReg(in.Dsts[0].Reg, old)
		}
	})
	return 2 + n, lerr
}

func atomApply32(op sass.AtomOp, old, b, c uint32, unsigned bool) uint32 {
	switch op {
	case sass.AtomADD:
		return old + b
	case sass.AtomMIN:
		if unsigned {
			if b < old {
				return b
			}
			return old
		}
		if int32(b) < int32(old) {
			return b
		}
		return old
	case sass.AtomMAX:
		if unsigned {
			if b > old {
				return b
			}
			return old
		}
		if int32(b) > int32(old) {
			return b
		}
		return old
	case sass.AtomAND:
		return old & b
	case sass.AtomOR:
		return old | b
	case sass.AtomXOR:
		return old ^ b
	case sass.AtomEXCH:
		return b
	case sass.AtomCAS:
		if old == b {
			return c
		}
		return old
	}
	return old
}

func atomApply64(op sass.AtomOp, old, b, c uint64) uint64 {
	switch op {
	case sass.AtomADD:
		return old + b
	case sass.AtomMIN:
		if b < old {
			return b
		}
		return old
	case sass.AtomMAX:
		if b > old {
			return b
		}
		return old
	case sass.AtomAND:
		return old & b
	case sass.AtomOR:
		return old | b
	case sass.AtomXOR:
		return old ^ b
	case sass.AtomEXCH:
		return b
	case sass.AtomCAS:
		if old == b {
			return c
		}
		return old
	}
	return old
}
