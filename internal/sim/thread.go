package sim

import (
	"math"

	"sassi/internal/mem"
)

// CC flag bits of the 4-bit condition code register.
const (
	CCZero  uint8 = 1 << 0
	CCSign  uint8 = 1 << 1
	CCCarry uint8 = 1 << 2
	CCOvf   uint8 = 1 << 3
)

// Thread is one lane's architecturally visible state.
type Thread struct {
	Regs  []uint32 // general purpose registers; index RZ is unused
	Preds uint8    // predicate register file, bit n = Pn (bit 7 = PT, forced 1)
	CC    uint8    // condition code flags

	Local *mem.Local // per-thread local memory (stack)

	// Identity.
	TidX, TidY, TidZ uint32
	FlatTid          uint32
	CtaX, CtaY, CtaZ uint32
	LaneID           uint32
	GlobalFlat       uint64 // unique over the whole grid
	DynInstrs        uint64 // executed (guard-enabled) instructions
	warp             *Warp
}

func newThread(numRegs int, localBytes int) *Thread {
	t := &Thread{
		Regs:  make([]uint32, numRegs),
		Preds: 1 << 7, // PT
		Local: mem.NewLocal(localBytes),
	}
	// Stack pointer starts at the top of local memory; stack grows down.
	t.Regs[1] = uint32(localBytes)
	return t
}

// ReadReg returns GPR r (RZ reads zero).
func (t *Thread) ReadReg(r uint8) uint32 {
	if r == 255 {
		return 0
	}
	return t.Regs[r]
}

// WriteReg sets GPR r (writes to RZ are dropped).
func (t *Thread) WriteReg(r uint8, v uint32) {
	if r == 255 {
		return
	}
	t.Regs[r] = v
}

// ReadReg64 returns the register pair (r, r+1) as a 64-bit value.
func (t *Thread) ReadReg64(r uint8) uint64 {
	return uint64(t.ReadReg(r)) | uint64(t.ReadReg(r+1))<<32
}

// WriteReg64 writes a 64-bit value into the pair (r, r+1).
func (t *Thread) WriteReg64(r uint8, v uint64) {
	t.WriteReg(r, uint32(v))
	t.WriteReg(r+1, uint32(v>>32))
}

// ReadPred returns predicate p (PT reads true).
func (t *Thread) ReadPred(p uint8) bool {
	if p == 7 {
		return true
	}
	return t.Preds&(1<<p) != 0
}

// WritePred sets predicate p (writes to PT are dropped).
func (t *Thread) WritePred(p uint8, v bool) {
	if p == 7 {
		return
	}
	if v {
		t.Preds |= 1 << p
	} else {
		t.Preds &^= 1 << p
	}
}

// FlipRegBit flips one bit of GPR r — the fault-injection primitive.
func (t *Thread) FlipRegBit(r uint8, bit uint) {
	if r == 255 {
		return
	}
	t.Regs[r] ^= 1 << (bit & 31)
}

// FlipPredBit flips predicate p.
func (t *Thread) FlipPredBit(p uint8) { t.WritePred(p, !t.ReadPred(p)) }

// FlipCCBit flips one of the four condition-code bits.
func (t *Thread) FlipCCBit(bit uint) { t.CC ^= 1 << (bit & 3) }

// Warp returns the warp this thread belongs to.
func (t *Thread) Warp() *Warp { return t.warp }

// guardPasses evaluates a predicate guard for this thread.
func (t *Thread) guardPasses(reg uint8, neg bool) bool {
	v := t.ReadPred(reg)
	if neg {
		return !v
	}
	return v
}

// Float helpers.

func f32(u uint32) float32  { return math.Float32frombits(u) }
func f32b(f float32) uint32 { return math.Float32bits(f) }
func i32(u uint32) int32    { return int32(u) }
func u32(i int32) uint32    { return uint32(i) }
