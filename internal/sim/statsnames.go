package sim

import "sassi/internal/obs"

// KernelStatsMetrics maps every KernelStats field to the canonical obs
// metric name publishMetrics exports it under, or "" for fields that are
// identity/geometry rather than counters. The audit test in
// statsnames_test.go fails the build when a KernelStats field is added
// without deciding its observability story — the contract that every
// counter the simulator grows shows up in both the sassi-stats JSON
// metrics map and the Prometheus endpoint.
func KernelStatsMetrics() map[string]string {
	return map[string]string{
		"Kernel": "", // identity, not a counter

		"WarpInstrs":           obs.MSimWarpInstrs,
		"ThreadInstrs":         obs.MSimThreadInstrs,
		"InjectedWarpInstrs":   obs.MSimInjectedWarpInstrs,
		"InjectedThreadInstrs": obs.MSimInjectedThreadInstrs,
		"HandlerCalls":         obs.MSimHandlerCalls,
		"MaxWarpInstrs":        obs.MSimMaxWarpInstrs,
		"GlobalTransactions":   obs.MMemGlobalTrans,
		"ScoreboardStalls":     obs.MSimScoreboardStalls,
		"Cycles":               obs.MSimCycles,
		// SMCycles is the per-shard decomposition of the same counter;
		// the sharded registry entry flattens to sim.cycles.sm<i>.
		"SMCycles": obs.MSimCycles,
		"CTAs":     obs.MSimCTAs,
		"Threads":  obs.MSimThreads,
	}
}
