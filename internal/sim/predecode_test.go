package sim

// Guards for the predecoded execution engine: the warp-issue steady state
// must stay allocation-free (mirroring TestWarpIssueZeroAlloc on the
// interpreter path), and the pooled launch arena must be safe to recycle
// across concurrent launches (exercised under -race).

import (
	"fmt"
	"sync"
	"testing"

	"sassi/internal/mem"
	"sassi/internal/sass"
)

// benchWarpPre is benchWarp with the kernel predecoded and stepped through
// stepPre, so the allocation guard covers the predecoded dispatch loop:
// class dispatch, the uniform fast path, per-lane ALU loops, and the BRA
// control transfer.
func benchWarpPre(tb testing.TB) func() {
	tb.Helper()
	k := &sass.Kernel{Name: "spin", NumRegs: 16, Labels: map[string]int{"loop": 0}}
	k.Instrs = []sass.Instruction{
		sass.New(sass.OpIADD, []sass.Operand{sass.R(0)}, []sass.Operand{sass.R(0), sass.R(1)}),
		sass.New(sass.OpFFMA, []sass.Operand{sass.R(2)}, []sass.Operand{sass.R(2), sass.R(3), sass.R(2)}),
		sass.New(sass.OpBRA, nil, []sass.Operand{sass.Label("loop")}),
	}
	if err := k.ResolveLabels(); err != nil {
		tb.Fatal(err)
	}
	prog := sass.NewProgram()
	prog.AddKernel(k)

	dev := NewDevice(MiniGPU())
	e := &engine{dev: dev, prog: prog, k: k}
	e.pre = dev.pre.get(k, sass.ParamBase)
	e.stats = &KernelStats{Kernel: k.Name, SMCycles: make([]uint64, dev.Cfg.NumSMs)}
	e.sms = make([]smShard, dev.Cfg.NumSMs)
	for i := range e.sms {
		e.sms[i].hier = mem.Hierarchy{
			L1: dev.L1s[i], L2: dev.L2s[i], DRAM: dev.DRAMs[i],
			L1Latency: dev.Cfg.L1Latency, L2Latency: dev.Cfg.L2Latency,
		}
	}
	e.ntid = [3]uint32{32, 1, 1}
	e.nctaid = [3]uint32{1, 1, 1}
	cta := e.buildCTA(0, D1(1), D1(32), 16, 0, 0, 0)
	w := cta.Warps[0]
	return func() {
		if err := e.stepPre(w); err != nil {
			tb.Fatal(err)
		}
		w.DynWarpInstrs = 0 // hold the watchdog off
	}
}

// TestPredecodedZeroAllocSteadyState pins the predecoded engine's
// allocation contract: after the launch-time predecode and arena setup,
// issuing warp instructions through stepPre performs zero heap allocations.
func TestPredecodedZeroAllocSteadyState(t *testing.T) {
	step := benchWarpPre(t)
	step() // warm up (first BRA resolves the divergence-free fall-through)
	if allocs := testing.AllocsPerRun(1000, func() { step() }); allocs != 0 {
		t.Errorf("predecoded warp issue allocates %.1f times per instruction, want 0", allocs)
	}
}

// TestArenaRecycleConcurrent hammers the shared launch-arena pool from
// concurrent devices so -race runs verify that slab recycling never hands
// two live launches overlapping thread state. Each goroutine owns a device
// but all draw arenas from the global pool; the store/verify kernel makes
// any cross-launch slab aliasing visible as a wrong result, not just a
// race report.
func TestArenaRecycleConcurrent(t *testing.T) {
	kernel := func(id uint32) (*sass.Program, string) {
		name := fmt.Sprintf("stamp%d", id)
		k := &sass.Kernel{Name: name, NumRegs: 16, Labels: map[string]int{}}
		out := k.AddParam("out", 8)
		k.Instrs = []sass.Instruction{
			sass.New(sass.OpMOV, []sass.Operand{sass.R(2)}, []sass.Operand{sass.CMem(0, int64(out))}),
			sass.New(sass.OpMOV, []sass.Operand{sass.R(3)}, []sass.Operand{sass.CMem(0, int64(out+4))}),
			sass.New(sass.OpS2R, []sass.Operand{sass.R(0)}, []sass.Operand{sass.SReg(sass.SRTidX)}),
			sass.New(sass.OpSHL, []sass.Operand{sass.R(4)}, []sass.Operand{sass.R(0), sass.Imm(2)}),
			sass.New(sass.OpIADD, []sass.Operand{sass.R(2)}, []sass.Operand{sass.R(2), sass.R(4)}),
			sass.New(sass.OpIADD32, []sass.Operand{sass.R(0)}, []sass.Operand{sass.R(0), sass.Imm(int64(id))}),
			{Guard: sass.Always, Op: sass.OpSTG, Mods: sass.Mods{E: true},
				Srcs: []sass.Operand{sass.Mem(2, 0), sass.R(0)}},
			sass.New(sass.OpEXIT, nil, nil),
		}
		if err := k.ResolveLabels(); err != nil {
			t.Fatal(err)
		}
		prog := sass.NewProgram()
		prog.AddKernel(k)
		return prog, name
	}

	const workers = 4
	const launches = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(id uint32) {
			defer wg.Done()
			cfg := MiniGPU()
			cfg.Engine = EnginePredecoded
			dev := NewDevice(cfg)
			prog, name := kernel(id)
			buf := dev.Alloc(4*64, "out")
			for i := 0; i < launches; i++ {
				if _, err := dev.Launch(prog, name, LaunchParams{
					Grid: D1(2), Block: D1(32), Args: []uint64{buf},
				}); err != nil {
					errs <- err
					return
				}
				for tid := uint64(0); tid < 32; tid++ {
					got, err := dev.Global.Read32(buf + 4*tid)
					if err != nil {
						errs <- err
						return
					}
					if want := uint32(tid) + id; got != want {
						errs <- fmt.Errorf("launch %d lane %d: got %d, want %d", i, tid, got, want)
						return
					}
				}
			}
		}(uint32(1000 * (g + 1)))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
