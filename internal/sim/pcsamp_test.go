package sim

// PC-sampler integration guards: the hot-path Record must stay
// allocation-free, and at period 1 the profile must account for every
// modeled cycle exactly (the property the accuracy experiment's ground
// truth rests on).

import (
	"testing"

	"sassi/internal/obs/pcsamp"
	"sassi/internal/sass"
)

// TestPCSampZeroAlloc pins the zero-allocation contract on the sampling
// hot path: with a small ring (so folds happen inside the measured window)
// and period 1 (so every issue records), stepping a warp allocates nothing
// once the aggregation map has seen each location.
func TestPCSampZeroAlloc(t *testing.T) {
	samp := pcsamp.NewWithRing(1, 64)
	step := benchWarp(t, nil, nil, samp)
	// Warm up past several ring folds so every (pc, reason, stack) key
	// exists in the aggregation map before measuring.
	for i := 0; i < 512; i++ {
		step()
	}
	if allocs := testing.AllocsPerRun(1000, func() { step() }); allocs != 0 {
		t.Errorf("sampled warp issue allocates %.1f times per instruction, want 0", allocs)
	}
}

// sampKernel builds the gid store kernel used by the launch tests.
func sampKernel(tb testing.TB) *sass.Program {
	tb.Helper()
	k := &sass.Kernel{Name: "gid", NumRegs: 16, Labels: map[string]int{}}
	out := k.AddParam("out", 8)
	k.Instrs = []sass.Instruction{
		sass.New(sass.OpMOV, []sass.Operand{sass.R(2)}, []sass.Operand{sass.CMem(0, int64(out))}),
		sass.New(sass.OpMOV, []sass.Operand{sass.R(3)}, []sass.Operand{sass.CMem(0, int64(out+4))}),
		sass.New(sass.OpS2R, []sass.Operand{sass.R(0)}, []sass.Operand{sass.SReg(sass.SRTidX)}),
		{Guard: sass.Always, Op: sass.OpSTG, Mods: sass.Mods{E: true},
			Srcs: []sass.Operand{sass.Mem(2, 0), sass.R(0)}},
		sass.New(sass.OpEXIT, nil, nil),
	}
	if err := k.ResolveLabels(); err != nil {
		tb.Fatal(err)
	}
	prog := sass.NewProgram()
	prog.AddKernel(k)
	return prog
}

// TestPCSampPeriodOneExact checks the exactness invariant: at period 1 the
// sample weights telescope, so the profile's total equals the launch's
// modeled cycles — every cycle attributed to exactly one PC.
func TestPCSampPeriodOneExact(t *testing.T) {
	prog := sampKernel(t)
	dev := NewDevice(MiniGPU())
	samp := pcsamp.New(1)
	dev.PCSamp = samp
	buf := dev.Alloc(4*64, "out")
	stats, err := dev.Launch(prog, "gid", LaunchParams{
		Grid: D1(2), Block: D1(32), Args: []uint64{buf},
	})
	if err != nil {
		t.Fatal(err)
	}
	var cycles uint64
	for _, c := range stats.SMCycles {
		cycles += c
	}
	prof := samp.Profile()
	if got := prof.TotalSamples() * prof.Period; got != cycles {
		t.Errorf("period-1 profile accounts %d cycles, launch modeled %d", got, cycles)
	}
	if prof.Launches != 1 {
		t.Errorf("profile launches = %d, want 1", prof.Launches)
	}
	// The STG's memory latency must be attributed to the memory reason.
	if stalls := prof.StallCycles(); stalls[pcsamp.ReasonMemory] == 0 {
		t.Errorf("no cycles attributed to memory stalls; reasons = %v", stalls)
	}
	// Every sampled PC must be a real instruction of the kernel.
	for pc := range prof.PCCycles() {
		if pc.Kernel != "gid" {
			t.Errorf("sampled unknown kernel %q", pc.Kernel)
		}
		if pc.PC < 0 || int(pc.PC) >= len(prog.Kernels[0].Instrs) {
			t.Errorf("sampled out-of-range pc %d", pc.PC)
		}
	}
}

// TestPCSampAccumulatesAcrossLaunches checks that repeated launches fold
// into one growing profile and that the free-list reuse between launches
// does not drop or double-count samples.
func TestPCSampAccumulatesAcrossLaunches(t *testing.T) {
	prog := sampKernel(t)
	dev := NewDevice(MiniGPU())
	samp := pcsamp.New(1)
	dev.PCSamp = samp
	buf := dev.Alloc(4*64, "out")
	var cycles uint64
	const launches = 3
	for i := 0; i < launches; i++ {
		stats, err := dev.Launch(prog, "gid", LaunchParams{
			Grid: D1(2), Block: D1(32), Args: []uint64{buf},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range stats.SMCycles {
			cycles += c
		}
	}
	prof := samp.Profile()
	if got := prof.TotalSamples(); got != cycles {
		t.Errorf("profile accounts %d cycles over %d launches, launches modeled %d",
			got, launches, cycles)
	}
	if prof.Launches != launches {
		t.Errorf("profile launches = %d, want %d", prof.Launches, launches)
	}
}
