package sim

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"sassi/internal/mem"
	"sassi/internal/obs"
	"sassi/internal/obs/pcsamp"
	"sassi/internal/sass"
)

// engine executes one kernel launch. Each SM runs on its own goroutine
// (unless Config.SequentialSMs or a MemWatch forces the sequential path),
// and all mutable per-launch state an SM touches lives in its smShard, so
// the goroutines share nothing but the device's Global memory — which is
// internally synchronized. Instrumentation handlers with warp collectives
// additionally fan out one goroutine per lane.
type engine struct {
	dev   *Device
	prog  *sass.Program
	k     *sass.Kernel
	cb    []byte // constant bank 0 for this launch
	stats *KernelStats

	// pre is the predecoded form of k; non-nil only on the predecoded
	// engine, where it switches warp stepping from step to stepPre.
	pre *preKernel

	// arena pools per-launch slab allocations (predecoded engine only).
	arena *launchArena

	sms    []smShard
	ntid   [3]uint32
	nctaid [3]uint32

	// cycleBase offsets this launch's device-lane trace spans so
	// successive launches stack on the device timeline.
	cycleBase uint64

	// PC-sampling attachment (nil when the device has no sampler): the
	// per-launch buffer set, the cycle cadence, and the warps-per-CTA
	// factor that makes launch-global warp ids (CTA*warpsPerCTA + id).
	samp        *pcsamp.LaunchSamples
	sampPeriod  uint64
	warpsPerCTA int
}

// smShard is one SM's private slice of the launch state: its view of the
// memory hierarchy and its statistics counters. Counters are merged into
// KernelStats at kernel exit with order-independent reductions (sums and
// maxes), which is what makes the merged stats bit-equal regardless of SM
// scheduling.
type smShard struct {
	hier mem.Hierarchy

	warpInstrs           uint64
	threadInstrs         uint64
	injectedWarpInstrs   uint64
	injectedThreadInstrs uint64
	handlerCalls         uint64
	maxWarpInstrs        uint64
	globalTransactions   uint64
	cycles               uint64

	// Observability counters: divergent-branch events and warp-sweeps a
	// warp sat blocked at a barrier. Plain fields like the rest of the
	// shard, so recording them costs nothing beyond the increment and the
	// order-independent merge keeps parallel runs bit-equal.
	divergentBranches  uint64
	barrierStallSweeps uint64
	scoreboardStalls   uint64
	ctasRun            uint64

	// PC sampling: this SM's single-writer sample buffer and the cycle
	// count at which the next sample fires. Like the counters above they
	// are plain shard fields — the hot path pays one nil check when
	// sampling is off and one compare when it is on.
	samp     *pcsamp.SMBuf
	sampNext uint64

	// warpOp is the predecoded engine's reusable batch descriptor for
	// warp-level global accesses (single-writer: only this SM's goroutine
	// touches it), and coalRes the coalescer result it reuses the same way
	// so the steady state performs no allocation per access.
	warpOp  mem.WarpOp
	coalRes mem.Result
}

func (e *engine) fail(w *Warp, kind ErrKind, format string, args ...any) error {
	return &KernelError{
		Kind:   kind,
		Kernel: e.k.Name,
		Detail: fmt.Sprintf("pc=%d: ", w.PC) + fmt.Sprintf(format, args...),
	}
}

// cbRead32 reads a 32-bit word from the launch's constant bank.
func (e *engine) cbRead32(off int64) (uint32, error) {
	if off < 0 || off+4 > int64(len(e.cb)) {
		return 0, &mem.Fault{Space: mem.SpaceConst, Addr: uint64(off), Why: "constant bank offset out of range"}
	}
	return binary.LittleEndian.Uint32(e.cb[off:]), nil
}

// srcU32 evaluates a scalar source operand for one thread.
func (e *engine) srcU32(t *Thread, o sass.Operand) (uint32, error) {
	switch o.Kind {
	case sass.OpdReg:
		return t.ReadReg(o.Reg), nil
	case sass.OpdImm:
		return uint32(o.Imm), nil
	case sass.OpdCMem:
		return e.cbRead32(o.Imm)
	case sass.OpdSReg:
		return e.readSR(t, o.SR), nil
	case sass.OpdPred:
		if t.guardPasses(o.Reg, o.Neg) {
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("unsupported source operand %s", o)
}

func (e *engine) readSR(t *Thread, sr sass.SpecialReg) uint32 {
	switch sr {
	case sass.SRLaneID:
		return t.LaneID
	case sass.SRTidX:
		return t.TidX
	case sass.SRTidY:
		return t.TidY
	case sass.SRTidZ:
		return t.TidZ
	case sass.SRCtaidX:
		return t.CtaX
	case sass.SRCtaidY:
		return t.CtaY
	case sass.SRCtaidZ:
		return t.CtaZ
	case sass.SRNTidX:
		return e.ntid[0]
	case sass.SRNTidY:
		return e.ntid[1]
	case sass.SRNTidZ:
		return e.ntid[2]
	case sass.SRNCtaidX:
		return e.nctaid[0]
	case sass.SRNCtaidY:
		return e.nctaid[1]
	case sass.SRNCtaidZ:
		return e.nctaid[2]
	case sass.SRWarpID:
		return uint32(t.warp.IDinCTA)
	case sass.SRSMID:
		return uint32(t.warp.CTA.SM)
	case sass.SRClock:
		// Per-SM instruction clock: SMs tick independently on hardware,
		// and a per-shard count keeps the value deterministic under
		// parallel SM execution.
		return uint32(e.sms[t.warp.CTA.SM].warpInstrs)
	}
	return 0
}

// step executes one instruction for warp w. It returns an error only for
// fatal kernel conditions (fault, hang, invalid op).
func (e *engine) step(w *Warp) error {
	if w.Done || w.AtBarrier {
		return nil
	}
	if w.PC < 0 || w.PC >= len(e.k.Instrs) {
		return e.fail(w, ErrInvalid, "PC out of range (fell off kernel end)")
	}
	st := &e.sms[w.CTA.SM]
	// PC sampling needs the pre-execution PC (control transfers rewrite
	// w.PC below) and the divergence count before this instruction, to
	// classify a branch that splits the mask. Both captures are plain
	// field reads; the second is gated so the sampling-off path pays only
	// one predictable branch.
	pcIdx := w.PC
	var divBefore uint64
	if st.samp != nil {
		divBefore = st.divergentBranches
	}
	w.DynWarpInstrs++
	if w.DynWarpInstrs > st.maxWarpInstrs {
		st.maxWarpInstrs = w.DynWarpInstrs
	}
	if w.DynWarpInstrs > e.dev.Cfg.WatchdogWarpInstrs {
		return e.fail(w, ErrHang, "watchdog: warp exceeded %d instructions", e.dev.Cfg.WatchdogWarpInstrs)
	}
	in := &e.k.Instrs[w.PC]

	// Guard evaluation over the active mask.
	exec := uint32(0)
	if in.Guard.IsAlways() {
		exec = w.Active
	} else {
		Lanes(w.Active, func(l int) {
			if w.Threads[l] != nil && w.Threads[l].guardPasses(in.Guard.Reg, in.Guard.Neg) {
				exec |= 1 << l
			}
		})
	}

	// Issue accounting.
	st.warpInstrs++
	nexec := bits.OnesCount32(exec)
	st.threadInstrs += uint64(nexec)
	if in.Injected {
		st.injectedWarpInstrs++
		st.injectedThreadInstrs += uint64(nexec)
	}
	cost := issueCost(in)
	Lanes(exec, func(l int) { w.Threads[l].DynInstrs++ })

	advance, cost, err := e.execOp(w, in, exec, cost)
	if err != nil {
		if ke, ok := err.(*KernelError); ok {
			return ke
		}
		if mf, ok := err.(*mem.Fault); ok {
			return e.fail(w, ErrMemFault, "%v", mf)
		}
		return e.fail(w, ErrInvalid, "%v", err)
	}
	if advance {
		w.PC++
	}
	stall := w.scoreboard(in, cost)
	st.cycles += uint64(cost) + stall
	st.scoreboardStalls += stall
	if st.samp != nil && st.cycles >= st.sampNext {
		e.takeSample(st, w, pcIdx, in, nexec, cost, stall, divBefore)
	}
	return nil
}

// execOp dispatches one instruction's operation, already past guard
// evaluation and issue accounting. It returns whether the PC advances
// sequentially and the final issue cost (the static cost plus any dynamic
// memory or handler charge). Both the classic interpreter (step) and the
// predecoded engine's fallback path (stepPre) funnel through it, so
// delegated operations cannot diverge between engines.
func (e *engine) execOp(w *Warp, in *sass.Instruction, exec uint32, cost int) (bool, int, error) {
	advance := true
	var err error
	switch in.Op {
	case sass.OpNOP, sass.OpF2F:
		// F2F is a conversion that is value-preserving at our precision.
		if in.Op == sass.OpF2F && exec != 0 {
			err = e.unary(w, in, exec, func(a uint32) uint32 { return a })
		}

	case sass.OpBRA:
		advance = false
		err = e.execBranch(w, in, exec)

	case sass.OpSSY:
		t, _ := in.BranchTarget()
		w.Stack = append(w.Stack, divEntry{kind: divSSY, pc: int(t.Imm), mask: w.Active})

	case sass.OpSYNC:
		advance = false
		if !w.popToNonEmpty() {
			w.Done = true
		}

	case sass.OpPBK, sass.OpBRK:
		// The compiler expresses loop exits through the SSY/SYNC idiom;
		// break tokens are defined by the ISA but never emitted.
		return false, cost, e.fail(w, ErrInvalid, "PBK/BRK are not supported by this backend")

	case sass.OpEXIT:
		w.exitLanes(exec)
		if w.Active == 0 {
			advance = false
			if !w.popToNonEmpty() {
				w.Done = true
			}
		}

	case sass.OpCAL:
		advance = false
		if exec != w.Active {
			return false, cost, e.fail(w, ErrInvalid, "divergent CAL is unsupported")
		}
		t, _ := in.BranchTarget()
		w.CallStack = append(w.CallStack, w.PC+1)
		w.PC = int(t.Imm)

	case sass.OpRET:
		advance = false
		if len(w.CallStack) == 0 {
			return false, cost, e.fail(w, ErrInvalid, "RET with empty call stack")
		}
		w.PC = w.CallStack[len(w.CallStack)-1]
		w.CallStack = w.CallStack[:len(w.CallStack)-1]

	case sass.OpJCAL:
		err = e.execJCAL(w, in, exec)
		cost += e.dev.Cfg.HandlerBodyCost

	case sass.OpBAR:
		if w.Active != w.Alive || exec != w.Active {
			return false, cost, e.fail(w, ErrInvalid, "divergent BAR.SYNC would deadlock")
		}
		w.AtBarrier = true

	case sass.OpLD, sass.OpST, sass.OpLDG, sass.OpSTG, sass.OpLDL, sass.OpSTL,
		sass.OpLDS, sass.OpSTS, sass.OpLDC, sass.OpATOM, sass.OpATOMS,
		sass.OpRED, sass.OpTLD:
		var memCost int
		memCost, err = e.execMem(w, in, exec)
		cost += memCost

	case sass.OpVOTE:
		err = e.execVote(w, in, exec)

	case sass.OpSHFL:
		err = e.execShfl(w, in, exec)

	default:
		err = e.execALU(w, in, exec)
	}
	return advance, cost, err
}

// execBranch implements predicated BRA with divergence-stack semantics.
func (e *engine) execBranch(w *Warp, in *sass.Instruction, taken uint32) error {
	t, ok := in.BranchTarget()
	if !ok || t.Kind != sass.OpdLabel {
		return fmt.Errorf("BRA without label target")
	}
	target := int(t.Imm)
	fall := w.Active &^ taken
	switch {
	case taken == 0:
		w.PC++
	case fall == 0:
		w.PC = target
	default:
		// Divergence: defer the fall-through lanes, run the taken path.
		w.Stack = append(w.Stack, divEntry{kind: divDEF, pc: w.PC + 1, mask: fall})
		w.Active = taken
		w.PC = target
		e.sms[w.CTA.SM].divergentBranches++
	}
	return nil
}

// execJCAL dispatches an instrumentation-handler call.
func (e *engine) execJCAL(w *Warp, in *sass.Instruction, exec uint32) error {
	t, ok := in.BranchTarget()
	if !ok || t.Kind != sass.OpdSym {
		return fmt.Errorf("JCAL without symbol target")
	}
	id, ok := e.prog.Handlers[t.Name]
	if !ok {
		return fmt.Errorf("JCAL to unlinked symbol %q", t.Name)
	}
	if e.dev.Dispatcher == nil {
		return fmt.Errorf("JCAL %q with no handler dispatcher installed", t.Name)
	}
	st := &e.sms[w.CTA.SM]
	st.handlerCalls++
	if tr := e.dev.Trace; tr != nil {
		tr.Span(obs.PidDevice, w.CTA.SM, "handler:"+t.Name,
			float64(e.cycleBase+st.cycles), float64(e.dev.Cfg.HandlerBodyCost), nil)
	}
	return e.dev.Dispatcher.Dispatch(e.dev, w, id)
}

// execVote implements VOTE.{ALL,ANY,BALLOT} over the executing lanes.
func (e *engine) execVote(w *Warp, in *sass.Instruction, exec uint32) error {
	if exec == 0 {
		return nil
	}
	src := in.Srcs[0]
	if src.Kind != sass.OpdPred {
		return fmt.Errorf("VOTE source must be a predicate")
	}
	var mask uint32
	Lanes(exec, func(l int) {
		if w.Threads[l].guardPasses(src.Reg, src.Neg) {
			mask |= 1 << l
		}
	})
	d := in.Dsts[0]
	switch in.Mods.Vote {
	case sass.VoteBALLOT:
		Lanes(exec, func(l int) { w.Threads[l].WriteReg(d.Reg, mask) })
	case sass.VoteALL:
		v := mask == exec
		Lanes(exec, func(l int) { w.Threads[l].WritePred(d.Reg, v) })
	case sass.VoteANY:
		v := mask != 0
		Lanes(exec, func(l int) { w.Threads[l].WritePred(d.Reg, v) })
	}
	return nil
}

// execShfl implements SHFL.{IDX,UP,DOWN,BFLY}.
func (e *engine) execShfl(w *Warp, in *sass.Instruction, exec uint32) error {
	if exec == 0 {
		return nil
	}
	// Dsts: [Pd, Rd]; Srcs: [Ra, b (lane/delta), c (clamp, unused)].
	pd := in.Dsts[0]
	rd := in.Dsts[1]
	var vals [WarpSize]uint32
	Lanes(exec, func(l int) {
		v, _ := e.srcU32(w.Threads[l], in.Srcs[0])
		vals[l] = v
	})
	var results [WarpSize]uint32
	var valid [WarpSize]bool
	var outerErr error
	Lanes(exec, func(l int) {
		b, err := e.srcU32(w.Threads[l], in.Srcs[1])
		if err != nil {
			outerErr = err
			return
		}
		src := l
		switch in.Mods.Shfl {
		case sass.ShflIDX:
			src = int(b & 31)
		case sass.ShflUP:
			src = l - int(b&31)
		case sass.ShflDOWN:
			src = l + int(b&31)
		case sass.ShflBFLY:
			src = l ^ int(b&31)
		}
		if src >= 0 && src < WarpSize && exec&(1<<src) != 0 {
			results[l] = vals[src]
			valid[l] = true
		} else {
			results[l] = vals[l]
			valid[l] = false
		}
	})
	if outerErr != nil {
		return outerErr
	}
	Lanes(exec, func(l int) {
		w.Threads[l].WriteReg(rd.Reg, results[l])
		if pd.Kind == sass.OpdPred {
			w.Threads[l].WritePred(pd.Reg, valid[l])
		}
	})
	return nil
}

// unary applies f to src0 for each executing lane.
func (e *engine) unary(w *Warp, in *sass.Instruction, exec uint32, f func(uint32) uint32) error {
	var err error
	Lanes(exec, func(l int) {
		t := w.Threads[l]
		a, e2 := e.srcU32(t, in.Srcs[0])
		if e2 != nil {
			err = e2
			return
		}
		t.WriteReg(in.Dsts[0].Reg, f(a))
	})
	return err
}

// execALU handles the arithmetic/logic/move family per lane.
func (e *engine) execALU(w *Warp, in *sass.Instruction, exec uint32) error {
	var err error
	Lanes(exec, func(l int) {
		if err != nil {
			return
		}
		err = e.execALULane(w.Threads[l], in)
	})
	return err
}

func (e *engine) execALULane(t *Thread, in *sass.Instruction) error {
	get := func(i int) (uint32, error) {
		if i >= len(in.Srcs) {
			return 0, fmt.Errorf("%s: missing source %d", in.Op, i)
		}
		return e.srcU32(t, in.Srcs[i])
	}
	put := func(v uint32) {
		t.WriteReg(in.Dsts[0].Reg, v)
	}
	switch in.Op {
	case sass.OpIADD, sass.OpIADD32:
		a, err := get(0)
		if err != nil {
			return err
		}
		b, err := get(1)
		if err != nil {
			return err
		}
		if in.Mods.NegB {
			b = -b
		}
		sum := uint64(a) + uint64(b)
		if in.Mods.X && t.CC&CCCarry != 0 {
			sum++
		}
		r := uint32(sum)
		if in.Mods.SetCC {
			t.CC = 0
			if r == 0 {
				t.CC |= CCZero
			}
			if int32(r) < 0 {
				t.CC |= CCSign
			}
			if sum>>32 != 0 {
				t.CC |= CCCarry
			}
			if (a^b)&0x8000_0000 == 0 && (a^r)&0x8000_0000 != 0 {
				t.CC |= CCOvf
			}
		}
		put(r)

	case sass.OpIMUL:
		a, err := get(0)
		if err != nil {
			return err
		}
		b, err := get(1)
		if err != nil {
			return err
		}
		put(a * b)

	case sass.OpIMAD:
		a, err := get(0)
		if err != nil {
			return err
		}
		b, err := get(1)
		if err != nil {
			return err
		}
		c, err := get(2)
		if err != nil {
			return err
		}
		put(a*b + c)

	case sass.OpISCADD:
		a, err := get(0)
		if err != nil {
			return err
		}
		b, err := get(1)
		if err != nil {
			return err
		}
		sh, err := get(2)
		if err != nil {
			return err
		}
		put((a << (sh & 31)) + b)

	case sass.OpISETP:
		return e.execSetp(t, in, false)

	case sass.OpFSETP:
		return e.execSetp(t, in, true)

	case sass.OpIMNMX:
		a, err := get(0)
		if err != nil {
			return err
		}
		b, err := get(1)
		if err != nil {
			return err
		}
		takeMin := true
		if len(in.Srcs) > 2 && in.Srcs[2].Kind == sass.OpdPred {
			takeMin = t.guardPasses(in.Srcs[2].Reg, in.Srcs[2].Neg)
		}
		var r uint32
		if in.Mods.Unsigned {
			if (a < b) == takeMin {
				r = a
			} else {
				r = b
			}
		} else {
			if (i32(a) < i32(b)) == takeMin {
				r = a
			} else {
				r = b
			}
		}
		put(r)

	case sass.OpLOP:
		a, err := get(0)
		if err != nil {
			return err
		}
		b, err := get(1)
		if err != nil {
			return err
		}
		switch in.Mods.Logic {
		case sass.LogicAND:
			put(a & b)
		case sass.LogicOR:
			put(a | b)
		case sass.LogicXOR:
			put(a ^ b)
		case sass.LogicPASS:
			put(b)
		case sass.LogicNOT:
			put(^b)
		}

	case sass.OpSHL:
		a, err := get(0)
		if err != nil {
			return err
		}
		b, err := get(1)
		if err != nil {
			return err
		}
		if b >= 32 {
			put(0)
		} else {
			put(a << b)
		}

	case sass.OpSHR:
		a, err := get(0)
		if err != nil {
			return err
		}
		b, err := get(1)
		if err != nil {
			return err
		}
		if in.Mods.Unsigned {
			if b >= 32 {
				put(0)
			} else {
				put(a >> b)
			}
		} else {
			if b >= 32 {
				b = 31
			}
			put(u32(i32(a) >> b))
		}

	case sass.OpBFE:
		a, err := get(0)
		if err != nil {
			return err
		}
		b, err := get(1)
		if err != nil {
			return err
		}
		pos := b & 0xff
		n := (b >> 8) & 0xff
		if n == 0 {
			put(0)
			break
		}
		if pos > 31 {
			pos = 31
		}
		if pos+n > 32 {
			n = 32 - pos
		}
		v := a >> pos
		if n < 32 {
			v &= (1 << n) - 1
		}
		if !in.Mods.Unsigned && n < 32 && v&(1<<(n-1)) != 0 {
			v |= ^uint32(0) << n
		}
		put(v)

	case sass.OpBFI:
		a, err := get(0)
		if err != nil {
			return err
		}
		b, err := get(1)
		if err != nil {
			return err
		}
		c, err := get(2)
		if err != nil {
			return err
		}
		pos := b & 0xff
		n := (b >> 8) & 0xff
		if pos > 31 {
			pos = 31
		}
		if pos+n > 32 {
			n = 32 - pos
		}
		maskv := uint32(0)
		if n > 0 {
			maskv = ((1 << n) - 1) << pos
		}
		put((c &^ maskv) | ((a << pos) & maskv))

	case sass.OpFLO:
		a, err := get(0)
		if err != nil {
			return err
		}
		if a == 0 {
			put(^uint32(0))
		} else {
			put(uint32(31 - bits.LeadingZeros32(a)))
		}

	case sass.OpPOPC:
		a, err := get(0)
		if err != nil {
			return err
		}
		put(uint32(bits.OnesCount32(a)))

	case sass.OpSEL:
		a, err := get(0)
		if err != nil {
			return err
		}
		b, err := get(1)
		if err != nil {
			return err
		}
		sel := in.Srcs[2]
		if t.guardPasses(sel.Reg, sel.Neg) {
			put(a)
		} else {
			put(b)
		}

	case sass.OpMOV, sass.OpMOV32:
		a, err := get(0)
		if err != nil {
			return err
		}
		put(a)

	case sass.OpS2R:
		put(e.readSR(t, in.Srcs[0].SR))

	case sass.OpP2R:
		// P2R moves the predicate file (or, with .X, the condition code)
		// into a GPR under a mask; SASSI's spill sequences rely on it.
		a, err := get(0)
		if err != nil {
			return err
		}
		maskv, err := get(1)
		if err != nil {
			return err
		}
		src := uint32(t.Preds)
		if in.Mods.X {
			src = uint32(t.CC)
		}
		put((a &^ maskv) | (src & maskv))

	case sass.OpR2P:
		a, err := get(0)
		if err != nil {
			return err
		}
		maskv, err := get(1)
		if err != nil {
			return err
		}
		if in.Mods.X {
			t.CC = (t.CC &^ uint8(maskv)) | (uint8(a) & uint8(maskv&0xf))
			break
		}
		// PT (bit 7) is not writable.
		maskv &= 0x7f
		t.Preds = (t.Preds &^ uint8(maskv)) | (uint8(a) & uint8(maskv))
		t.Preds |= 1 << 7

	case sass.OpPSETP:
		pa := in.Srcs[0]
		pb := in.Srcs[1]
		a := t.guardPasses(pa.Reg, pa.Neg)
		b := t.guardPasses(pb.Reg, pb.Neg)
		var v bool
		switch in.Mods.Logic {
		case sass.LogicAND:
			v = a && b
		case sass.LogicOR:
			v = a || b
		case sass.LogicXOR:
			v = a != b
		default:
			v = a
		}
		t.WritePred(in.Dsts[0].Reg, v)

	case sass.OpFADD:
		return e.fbinop(t, in, func(a, b float32) float32 { return a + b })
	case sass.OpFMUL:
		return e.fbinop(t, in, func(a, b float32) float32 { return a * b })
	case sass.OpFFMA:
		a, err := get(0)
		if err != nil {
			return err
		}
		b, err := get(1)
		if err != nil {
			return err
		}
		c, err := get(2)
		if err != nil {
			return err
		}
		put(f32b(f32(a)*f32(b) + f32(c)))
	case sass.OpFMNMX:
		a, err := get(0)
		if err != nil {
			return err
		}
		b, err := get(1)
		if err != nil {
			return err
		}
		takeMin := true
		if len(in.Srcs) > 2 && in.Srcs[2].Kind == sass.OpdPred {
			takeMin = t.guardPasses(in.Srcs[2].Reg, in.Srcs[2].Neg)
		}
		fa, fb := f32(a), f32(b)
		if (fa < fb) == takeMin {
			put(a)
		} else {
			put(b)
		}

	case sass.OpMUFU:
		a, err := get(0)
		if err != nil {
			return err
		}
		x := float64(f32(a))
		var r float64
		switch in.Mods.Mufu {
		case sass.MufuRCP:
			r = 1 / x
		case sass.MufuRSQ:
			r = 1 / math.Sqrt(x)
		case sass.MufuSQRT:
			r = math.Sqrt(x)
		case sass.MufuSIN:
			r = math.Sin(x)
		case sass.MufuCOS:
			r = math.Cos(x)
		case sass.MufuEX2:
			r = math.Exp2(x)
		case sass.MufuLG2:
			r = math.Log2(x)
		}
		put(f32b(float32(r)))

	case sass.OpF2I:
		a, err := get(0)
		if err != nil {
			return err
		}
		f := f32(a)
		switch {
		case math.IsNaN(float64(f)):
			put(0)
		case f >= math.MaxInt32:
			put(u32(math.MaxInt32))
		case f <= math.MinInt32:
			put(u32(math.MinInt32))
		default:
			put(u32(int32(f)))
		}

	case sass.OpI2F:
		a, err := get(0)
		if err != nil {
			return err
		}
		if in.Mods.Unsigned {
			put(f32b(float32(a)))
		} else {
			put(f32b(float32(i32(a))))
		}

	default:
		return fmt.Errorf("opcode %s not implemented", in.Op)
	}
	return nil
}

func (e *engine) fbinop(t *Thread, in *sass.Instruction, f func(a, b float32) float32) error {
	a, err := e.srcU32(t, in.Srcs[0])
	if err != nil {
		return err
	}
	b, err := e.srcU32(t, in.Srcs[1])
	if err != nil {
		return err
	}
	fb := f32(b)
	if in.Mods.NegB {
		fb = -fb
	}
	t.WriteReg(in.Dsts[0].Reg, f32b(f(f32(a), fb)))
	return nil
}

// execSetp implements ISETP/FSETP: Pd = (a cmp b) LOGIC Pc, and optionally
// Pq = !(a cmp b) LOGIC Pc.
func (e *engine) execSetp(t *Thread, in *sass.Instruction, float bool) error {
	a, err := e.srcU32(t, in.Srcs[0])
	if err != nil {
		return err
	}
	b, err := e.srcU32(t, in.Srcs[1])
	if err != nil {
		return err
	}
	var cmp bool
	if float {
		fa, fb := f32(a), f32(b)
		switch in.Mods.Cmp {
		case sass.CmpLT:
			cmp = fa < fb
		case sass.CmpLE:
			cmp = fa <= fb
		case sass.CmpGT:
			cmp = fa > fb
		case sass.CmpGE:
			cmp = fa >= fb
		case sass.CmpEQ:
			cmp = fa == fb
		case sass.CmpNE:
			cmp = fa != fb
		}
	} else if in.Mods.Unsigned {
		switch in.Mods.Cmp {
		case sass.CmpLT:
			cmp = a < b
		case sass.CmpLE:
			cmp = a <= b
		case sass.CmpGT:
			cmp = a > b
		case sass.CmpGE:
			cmp = a >= b
		case sass.CmpEQ:
			cmp = a == b
		case sass.CmpNE:
			cmp = a != b
		}
	} else {
		sa, sb := i32(a), i32(b)
		switch in.Mods.Cmp {
		case sass.CmpLT:
			cmp = sa < sb
		case sass.CmpLE:
			cmp = sa <= sb
		case sass.CmpGT:
			cmp = sa > sb
		case sass.CmpGE:
			cmp = sa >= sb
		case sass.CmpEQ:
			cmp = sa == sb
		case sass.CmpNE:
			cmp = sa != sb
		}
	}
	c := true
	if len(in.Srcs) > 2 && in.Srcs[2].Kind == sass.OpdPred {
		c = t.guardPasses(in.Srcs[2].Reg, in.Srcs[2].Neg)
	}
	combine := func(x bool) bool {
		switch in.Mods.Logic {
		case sass.LogicAND:
			return x && c
		case sass.LogicOR:
			return x || c
		case sass.LogicXOR:
			return x != c
		}
		return x
	}
	t.WritePred(in.Dsts[0].Reg, combine(cmp))
	if len(in.Dsts) > 1 && in.Dsts[1].Kind == sass.OpdPred {
		t.WritePred(in.Dsts[1].Reg, combine(!cmp))
	}
	return nil
}

// issueCost is the base pipeline cost of one warp instruction, delegated
// to the canonical latency model in internal/sass so the ptxas list
// scheduler optimizes against exactly what the simulator charges.
func issueCost(in *sass.Instruction) int { return sass.IssueCost(in) }
