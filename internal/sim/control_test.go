package sim_test

import (
	"testing"

	"sassi/internal/sass"
	"sassi/internal/sim"
)

// TestDivergentIfReconverges: lanes take both sides of a branch and
// reconverge with full occupancy afterwards.
func TestDivergentIfReconverges(t *testing.T) {
	// if (lane < 16) R1 = 1 else R1 = 2; after reconv R2 = ballot(1).
	h := &warpHarness{
		labels: map[string]int{"else": 6, "reconv": 8},
		instrs: []sass.Instruction{
			tid(0), // 0
			setp(0, sass.CmpLT, true, sass.R(0), sass.Imm(16)), // 1
			ssy("reconv"),                 // 2
			guarded(bra("else"), 0, true), // 3
			movi(1, 1),                    // 4 then
			sync(),                        // 5
			movi(1, 2),                    // 6 else
			sync(),                        // 7
			// 8 reconv: ballot over the reconverged warp.
			{Guard: sass.Always, Op: sass.OpVOTE, Mods: sass.Mods{Vote: sass.VoteBALLOT},
				Dsts: []sass.Operand{sass.R(2)},
				Srcs: []sass.Operand{sass.P(sass.PT)}},
		},
		outRegs: []uint8{1, 2},
	}
	got := h.run(t)
	for lane := 0; lane < 32; lane++ {
		want := uint32(2)
		if lane < 16 {
			want = 1
		}
		if got[lane][0] != want {
			t.Fatalf("lane %d R1 = %d, want %d", lane, got[lane][0], want)
		}
		if got[lane][1] != 0xffffffff {
			t.Fatalf("lane %d post-reconvergence ballot = %#x, want full warp", lane, got[lane][1])
		}
	}
}

// TestUniformBranchSkipsElse: when every lane agrees, the other path never
// executes.
func TestUniformBranchSkipsElse(t *testing.T) {
	h := &warpHarness{
		labels: map[string]int{"else": 5, "reconv": 7},
		instrs: []sass.Instruction{
			setp(0, sass.CmpEQ, true, sass.R(sass.RZ), sass.Imm(0)), // always true
			ssy("reconv"),
			guarded(bra("else"), 0, true),
			movi(1, 1), // then (taken by all)
			sync(),
			movi(1, 2), // else (dead)
			sync(),
		},
		outRegs: []uint8{1},
	}
	expectAll(t, h.run(t), 1)
}

// TestNestedDivergence: inner divergence within one arm of an outer branch.
func TestNestedDivergence(t *testing.T) {
	// outer: lane<16 -> inner: lane<8 ? R1=1 : R1=2 ; else R1=3
	h := &warpHarness{
		labels: map[string]int{
			"ielse": 8, "ireconv": 10, "oelse": 11, "oreconv": 13,
		},
		instrs: []sass.Instruction{
			tid(0), // 0
			setp(0, sass.CmpLT, true, sass.R(0), sass.Imm(16)), // 1
			setp(1, sass.CmpLT, true, sass.R(0), sass.Imm(8)),  // 2
			ssy("oreconv"),                 // 3
			guarded(bra("oelse"), 0, true), // 4
			ssy("ireconv"),                 // 5 (outer-then)
			guarded(bra("ielse"), 1, true), // 6
			movi(1, 1),                     // 7 inner-then
			sync(),                         // 8  <- label ielse points here? no...
			movi(1, 2),                     // 9?? fixed below
			sync(),                         // 10
			movi(1, 3),                     // 11 outer else
			sync(),                         // 12
			sass.New(sass.OpNOP, nil, nil), // 13 oreconv
		},
		outRegs: []uint8{1},
	}
	// Rebuild labels to match the actual indices:
	// 7: inner-then movi; 8: SYNC(inner-then end)... the layout above is
	// already linear; recompute:
	h.labels = map[string]int{"ielse": 9, "ireconv": 11, "oelse": 11, "oreconv": 13}
	// instrs: 0 tid,1 setp0,2 setp1,3 ssy(oreconv),4 bra(oelse),5 ssy(ireconv),
	// 6 bra(ielse),7 movi1,8 sync,9 movi2,10 sync,11 movi3... conflict: oelse
	// and ireconv both at 11. Rework with explicit separate blocks:
	h.instrs = []sass.Instruction{
		tid(0), // 0
		setp(0, sass.CmpLT, true, sass.R(0), sass.Imm(16)), // 1
		setp(1, sass.CmpLT, true, sass.R(0), sass.Imm(8)),  // 2
		ssy("oreconv"),                 // 3
		guarded(bra("oelse"), 0, true), // 4
		ssy("ireconv"),                 // 5
		guarded(bra("ielse"), 1, true), // 6
		movi(1, 1),                     // 7
		sync(),                         // 8
		movi(1, 2),                     // 9 ielse
		sync(),                         // 10
		sass.New(sass.OpNOP, nil, nil), // 11 ireconv (still outer-then)
		sync(),                         // 12 end of outer-then
		movi(1, 3),                     // 13 oelse
		sync(),                         // 14
		sass.New(sass.OpNOP, nil, nil), // 15 oreconv
	}
	h.labels = map[string]int{"ielse": 9, "ireconv": 11, "oelse": 13, "oreconv": 15}
	got := h.run(t)
	for lane := 0; lane < 32; lane++ {
		want := uint32(3)
		if lane < 8 {
			want = 1
		} else if lane < 16 {
			want = 2
		}
		if got[lane][0] != want {
			t.Fatalf("lane %d = %d, want %d", lane, got[lane][0], want)
		}
	}
}

// TestDivergentLoop: per-lane trip counts; each lane accumulates its own
// iteration count.
func TestDivergentLoop(t *testing.T) {
	// R1 = 0; while (R1 < lane) R1++  — lane N loops N times.
	h := &warpHarness{
		labels: map[string]int{"head": 3, "lsync": 7, "exit": 8},
		instrs: []sass.Instruction{
			tid(0),     // 0
			movi(1, 0), // 1
			ssy("exit"),
			// 3 head:
			setp(0, sass.CmpGE, true, sass.R(1), sass.R(0)),
			guarded(bra("lsync"), 0, false),                          // 4: exit lanes
			alu(sass.OpIADD, sass.Mods{}, 1, sass.R(1), sass.Imm(1)), // 5
			bra("head"),                    // 6
			sync(),                         // 7 lsync
			sass.New(sass.OpNOP, nil, nil), // 8 exit
		},
		outRegs: []uint8{1},
	}
	got := h.run(t)
	for lane := 0; lane < 32; lane++ {
		if got[lane][0] != uint32(lane) {
			t.Fatalf("lane %d looped %d times, want %d", lane, got[lane][0], lane)
		}
	}
}

// TestPartialExit: some lanes EXIT early; survivors keep running and
// ballots exclude the dead lanes.
func TestPartialExit(t *testing.T) {
	h := &warpHarness{
		instrs: []sass.Instruction{
			tid(0),
			setp(0, sass.CmpGE, true, sass.R(0), sass.Imm(8)),
			guarded(sass.New(sass.OpEXIT, nil, nil), 0, false), // lanes >= 8 exit
			{Guard: sass.Always, Op: sass.OpVOTE, Mods: sass.Mods{Vote: sass.VoteBALLOT},
				Dsts: []sass.Operand{sass.R(1)},
				Srcs: []sass.Operand{sass.P(sass.PT)}},
		},
		outRegs: []uint8{1},
		threads: 32,
	}
	got := h.run(t)
	for lane := 0; lane < 8; lane++ {
		if got[lane][0] != 0xff {
			t.Fatalf("surviving lane %d ballot = %#x, want 0xff", lane, got[lane][0])
		}
	}
	// Exited lanes never stored: their slots stay zero.
	for lane := 8; lane < 32; lane++ {
		if got[lane][0] != 0 {
			t.Fatalf("exited lane %d stored %#x", lane, got[lane][0])
		}
	}
}

func TestVoteAllAny(t *testing.T) {
	h := &warpHarness{
		instrs: []sass.Instruction{
			tid(0),
			setp(0, sass.CmpLT, true, sass.R(0), sass.Imm(16)), // half true
			setp(1, sass.CmpLT, true, sass.R(0), sass.Imm(32)), // all true
			{Guard: sass.Always, Op: sass.OpVOTE, Mods: sass.Mods{Vote: sass.VoteALL},
				Dsts: []sass.Operand{sass.P(2)}, Srcs: []sass.Operand{sass.P(0)}},
			{Guard: sass.Always, Op: sass.OpVOTE, Mods: sass.Mods{Vote: sass.VoteALL},
				Dsts: []sass.Operand{sass.P(3)}, Srcs: []sass.Operand{sass.P(1)}},
			{Guard: sass.Always, Op: sass.OpVOTE, Mods: sass.Mods{Vote: sass.VoteANY},
				Dsts: []sass.Operand{sass.P(4)}, Srcs: []sass.Operand{sass.P(0)}},
			alu(sass.OpP2R, sass.Mods{}, 1, sass.R(sass.RZ), sass.Imm(0x7f)),
		},
		outRegs: []uint8{1},
	}
	got := h.run(t)
	for lane := 0; lane < 32; lane++ {
		preds := got[lane][0]
		if preds&(1<<2) != 0 {
			t.Fatal("VOTE.ALL true on divided predicate")
		}
		if preds&(1<<3) == 0 {
			t.Fatal("VOTE.ALL false on uniform predicate")
		}
		if preds&(1<<4) == 0 {
			t.Fatal("VOTE.ANY false with half the warp")
		}
	}
}

func TestShflModes(t *testing.T) {
	h := &warpHarness{
		instrs: []sass.Instruction{
			tid(0),
			// IDX from lane 5.
			{Guard: sass.Always, Op: sass.OpSHFL, Mods: sass.Mods{Shfl: sass.ShflIDX},
				Dsts: []sass.Operand{sass.P(0), sass.R(1)},
				Srcs: []sass.Operand{sass.R(0), sass.Imm(5)}},
			// DOWN by 1: lane i gets lane i+1 (lane 31 keeps own).
			{Guard: sass.Always, Op: sass.OpSHFL, Mods: sass.Mods{Shfl: sass.ShflDOWN},
				Dsts: []sass.Operand{sass.P(1), sass.R(2)},
				Srcs: []sass.Operand{sass.R(0), sass.Imm(1)}},
			// BFLY xor 1: pairs swap.
			{Guard: sass.Always, Op: sass.OpSHFL, Mods: sass.Mods{Shfl: sass.ShflBFLY},
				Dsts: []sass.Operand{sass.P(2), sass.R(3)},
				Srcs: []sass.Operand{sass.R(0), sass.Imm(1)}},
		},
		outRegs: []uint8{1, 2, 3},
	}
	got := h.run(t)
	for lane := 0; lane < 32; lane++ {
		if got[lane][0] != 5 {
			t.Fatalf("IDX: lane %d = %d", lane, got[lane][0])
		}
		wantDown := uint32(lane + 1)
		if lane == 31 {
			wantDown = 31 // invalid source keeps own value
		}
		if got[lane][1] != wantDown {
			t.Fatalf("DOWN: lane %d = %d, want %d", lane, got[lane][1], wantDown)
		}
		if got[lane][2] != uint32(lane^1) {
			t.Fatalf("BFLY: lane %d = %d", lane, got[lane][2])
		}
	}
}

// TestWatchdogHang: an infinite loop must be reported as a hang.
func TestWatchdogHang(t *testing.T) {
	cfg := sim.MiniGPU()
	cfg.WatchdogWarpInstrs = 1000
	h := &warpHarness{
		labels: map[string]int{"spin": 0},
		instrs: []sass.Instruction{bra("spin")},
	}
	err := h.runErr(t, cfg)
	ke, ok := err.(*sim.KernelError)
	if !ok || ke.Kind != sim.ErrHang {
		t.Fatalf("err = %v, want hang", err)
	}
}

// TestMemFaultKillsKernel: a wild store raises a memory-fault error.
func TestMemFaultKillsKernel(t *testing.T) {
	h := &warpHarness{
		instrs: []sass.Instruction{
			movi(0, 0x100), // below any space window
			movi(1, 0),
			{Guard: sass.Always, Op: sass.OpST, Mods: sass.Mods{E: true},
				Srcs: []sass.Operand{sass.Mem(0, 0), sass.R(2)}},
		},
	}
	err := h.runErr(t, sim.MiniGPU())
	ke, ok := err.(*sim.KernelError)
	if !ok || ke.Kind != sim.ErrMemFault {
		t.Fatalf("err = %v, want memory fault", err)
	}
}

// TestDivergentBarrierIsError: BAR.SYNC with divergent lanes is detected.
func TestDivergentBarrierIsError(t *testing.T) {
	h := &warpHarness{
		labels: map[string]int{"skip": 3, "reconv": 4},
		instrs: []sass.Instruction{
			tid(0),
			setp(0, sass.CmpLT, true, sass.R(0), sass.Imm(16)),
			guarded(sass.New(sass.OpBAR, nil, nil), 0, false), // divergent barrier
		},
	}
	err := h.runErr(t, sim.MiniGPU())
	if err == nil {
		t.Fatal("divergent barrier accepted")
	}
}

// TestCALRET: subroutine call and return.
func TestCALRET(t *testing.T) {
	h := &warpHarness{
		labels: map[string]int{"fn": 3, "after": 2},
		instrs: []sass.Instruction{
			movi(0, 1), // 0
			sass.New(sass.OpCAL, nil, []sass.Operand{sass.Label("fn")}), // 1
			bra("epilogue"), // 2 after: jump to store
			alu(sass.OpIADD, sass.Mods{}, 0, sass.R(0), sass.Imm(41)), // 3 fn body
			sass.New(sass.OpRET, nil, nil),                            // 4
		},
		outRegs: []uint8{0},
	}
	expectAll(t, h.run(t), 42)
}

// TestBarrierSynchronizesCTA: producer warp writes shared memory before
// the barrier; consumer warps read after it.
func TestBarrierSynchronizesCTA(t *testing.T) {
	// Build a 64-thread CTA: warp 0 writes shared[0]=7, all threads read
	// it after BAR.
	k := &sass.Kernel{Name: "bar", Labels: map[string]int{}, NumRegs: 48, SharedBytes: 64}
	outOff := k.AddParam("out", 8)
	k.Instrs = []sass.Instruction{
		tid(0),
		setp(0, sass.CmpEQ, true, sass.R(0), sass.Imm(0)),
		movi(1, 7),
		guarded(sass.Instruction{Op: sass.OpSTS, Mods: sass.Mods{},
			Srcs: []sass.Operand{sass.Mem(sass.RZ, 0), sass.R(1)}}, 0, false),
		sass.New(sass.OpBAR, nil, nil),
		{Guard: sass.Always, Op: sass.OpLDS,
			Dsts: []sass.Operand{sass.R(2)},
			Srcs: []sass.Operand{sass.Mem(sass.RZ, 0)}},
		// store R2 to out[tid]
		sass.New(sass.OpMOV, []sass.Operand{sass.R(4)}, []sass.Operand{sass.CMem(0, int64(outOff))}),
		sass.New(sass.OpMOV, []sass.Operand{sass.R(5)}, []sass.Operand{sass.CMem(0, int64(outOff+4))}),
		alu(sass.OpSHL, sass.Mods{}, 6, sass.R(0), sass.Imm(2)),
		{Guard: sass.Always, Op: sass.OpIADD, Mods: sass.Mods{SetCC: true},
			Dsts: []sass.Operand{sass.R(4)}, Srcs: []sass.Operand{sass.R(4), sass.R(6)}},
		{Guard: sass.Always, Op: sass.OpIADD, Mods: sass.Mods{X: true},
			Dsts: []sass.Operand{sass.R(5)}, Srcs: []sass.Operand{sass.R(5), sass.R(sass.RZ)}},
		{Guard: sass.Always, Op: sass.OpSTG, Mods: sass.Mods{E: true},
			Srcs: []sass.Operand{sass.Mem(4, 0), sass.R(2)}},
		sass.New(sass.OpEXIT, nil, nil),
	}
	if err := k.ResolveLabels(); err != nil {
		t.Fatal(err)
	}
	prog := sass.NewProgram()
	prog.AddKernel(k)
	dev := sim.NewDevice(sim.MiniGPU())
	out := dev.Alloc(4*64, "out")
	if _, err := dev.Launch(prog, "bar", sim.LaunchParams{
		Grid: sim.D1(1), Block: sim.D1(64), Args: []uint64{out},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		v, _ := dev.Global.Read32(out + uint64(4*i))
		if v != 7 {
			t.Fatalf("thread %d read %d, want 7 (barrier did not order the write)", i, v)
		}
	}
}
