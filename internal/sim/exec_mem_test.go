package sim_test

import (
	"testing"

	"sassi/internal/mem"
	"sassi/internal/sass"
	"sassi/internal/sim"
)

// memHarness launches a kernel with one extra scratch buffer parameter and
// returns (device, scratch base) for memory-op tests.
func memRun(t *testing.T, sharedBytes int, body func(scratchOff int) []sass.Instruction) (*sim.Device, uint64) {
	t.Helper()
	k := &sass.Kernel{Name: "m", Labels: map[string]int{}, NumRegs: 48, SharedBytes: sharedBytes}
	scratchOff := k.AddParam("scratch", 8)
	k.Instrs = append(body(scratchOff), sass.New(sass.OpEXIT, nil, nil))
	if err := k.ResolveLabels(); err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	prog := sass.NewProgram()
	prog.AddKernel(k)
	dev := sim.NewDevice(sim.MiniGPU())
	scratch := dev.Alloc(4096, "scratch")
	if _, err := dev.Launch(prog, "m", sim.LaunchParams{
		Grid: sim.D1(1), Block: sim.D1(32), Args: []uint64{scratch},
	}); err != nil {
		t.Fatal(err)
	}
	return dev, scratch
}

// ldScratch loads the scratch pointer into (R40, R41).
func ldScratch(off int) []sass.Instruction {
	return []sass.Instruction{
		sass.New(sass.OpMOV, []sass.Operand{sass.R(40)}, []sass.Operand{sass.CMem(0, int64(off))}),
		sass.New(sass.OpMOV, []sass.Operand{sass.R(41)}, []sass.Operand{sass.CMem(0, int64(off+4))}),
	}
}

func TestSTGWidths(t *testing.T) {
	dev, scratch := memRun(t, 0, func(off int) []sass.Instruction {
		ins := ldScratch(off)
		ins = append(ins,
			tid(0),
			setp(0, sass.CmpEQ, true, sass.R(0), sass.Imm(0)), // lane 0 only
			movi(2, 0x11223344),
			movi(3, 0x55667788),
			guarded(sass.Instruction{Op: sass.OpSTG, Mods: sass.Mods{E: true, Width: sass.W64},
				Srcs: []sass.Operand{sass.Mem(40, 0), sass.R(2)}}, 0, false),
			guarded(sass.Instruction{Op: sass.OpSTG, Mods: sass.Mods{E: true, Width: sass.W8},
				Srcs: []sass.Operand{sass.Mem(40, 16), sass.R(2)}}, 0, false),
			guarded(sass.Instruction{Op: sass.OpSTG, Mods: sass.Mods{E: true, Width: sass.W16},
				Srcs: []sass.Operand{sass.Mem(40, 20), sass.R(3)}}, 0, false),
		)
		return ins
	})
	if lo, _ := dev.Global.Read32(scratch); lo != 0x11223344 {
		t.Errorf("64-bit store lo = %#x", lo)
	}
	if hi, _ := dev.Global.Read32(scratch + 4); hi != 0x55667788 {
		t.Errorf("64-bit store hi = %#x", hi)
	}
	if b, _ := dev.Global.Read32(scratch + 16); b&0xff != 0x44 {
		t.Errorf("8-bit store = %#x", b)
	}
	if h, _ := dev.Global.Read32(scratch + 20); h&0xffff != 0x7788 {
		t.Errorf("16-bit store = %#x", h)
	}
}

func TestLDGWidths(t *testing.T) {
	dev, scratch := memRun(t, 0, func(off int) []sass.Instruction {
		ins := ldScratch(off)
		ins = append(ins,
			tid(0),
			setp(0, sass.CmpEQ, true, sass.R(0), sass.Imm(0)),
			movi(2, -0x55443323), // 0xAABBCCDD as int32
			movi(3, 0x00112233),
			// Store a pair then read it back in various widths.
			guarded(sass.Instruction{Op: sass.OpSTG, Mods: sass.Mods{E: true, Width: sass.W64},
				Srcs: []sass.Operand{sass.Mem(40, 0), sass.R(2)}}, 0, false),
			guarded(sass.Instruction{Op: sass.OpLDG, Mods: sass.Mods{E: true, Width: sass.W64},
				Dsts: []sass.Operand{sass.R(10)},
				Srcs: []sass.Operand{sass.Mem(40, 0)}}, 0, false),
			guarded(sass.Instruction{Op: sass.OpLDG, Mods: sass.Mods{E: true, Width: sass.W8},
				Dsts: []sass.Operand{sass.R(12)},
				Srcs: []sass.Operand{sass.Mem(40, 1)}}, 0, false),
			guarded(sass.Instruction{Op: sass.OpLDG, Mods: sass.Mods{E: true, Width: sass.W16},
				Dsts: []sass.Operand{sass.R(13)},
				Srcs: []sass.Operand{sass.Mem(40, 2)}}, 0, false),
			// Write observed values out.
			guarded(sass.Instruction{Op: sass.OpSTG, Mods: sass.Mods{E: true, Width: sass.W128},
				Srcs: []sass.Operand{sass.Mem(40, 32), sass.R(10)}}, 0, false),
		)
		return ins
	})
	if v, _ := dev.Global.Read32(scratch + 32); v != 0xAABBCCDD {
		t.Errorf("ld64 lo = %#x", v)
	}
	if v, _ := dev.Global.Read32(scratch + 36); v != 0x00112233 {
		t.Errorf("ld64 hi = %#x", v)
	}
	if v, _ := dev.Global.Read32(scratch + 40); v != 0xCC { // byte at +1, zero extended
		t.Errorf("ld8 = %#x", v)
	}
	if v, _ := dev.Global.Read32(scratch + 44); v != 0xAABB {
		t.Errorf("ld16 = %#x", v)
	}
}

func TestSharedRoundtripAndGenericWindow(t *testing.T) {
	dev, scratch := memRun(t, 256, func(off int) []sass.Instruction {
		ins := ldScratch(off)
		ins = append(ins,
			tid(0),
			// Each lane stores lane*3 to shared[lane] then loads neighbor
			// (lane+1)%32 and writes it to scratch[lane].
			alu(sass.OpIMUL, sass.Mods{}, 1, sass.R(0), sass.Imm(3)),
			alu(sass.OpSHL, sass.Mods{}, 2, sass.R(0), sass.Imm(2)),
			sass.Instruction{Guard: sass.Always, Op: sass.OpSTS,
				Srcs: []sass.Operand{sass.Mem(2, 0), sass.R(1)}},
			// generic window read: gen addr = (lane*4) | SharedBase
			alu(sass.OpLOP, sass.Mods{Logic: sass.LogicOR}, 3, sass.R(2), sass.CMem(0, sass.CBSharedBase)),
			movi(4, 0),
			sass.Instruction{Guard: sass.Always, Op: sass.OpLD, Mods: sass.Mods{E: true},
				Dsts: []sass.Operand{sass.R(5)},
				Srcs: []sass.Operand{sass.Mem(3, 0)}},
			// write to scratch[lane]
			sass.Instruction{Guard: sass.Always, Op: sass.OpIADD, Mods: sass.Mods{SetCC: true},
				Dsts: []sass.Operand{sass.R(40)}, Srcs: []sass.Operand{sass.R(40), sass.R(2)}},
			sass.Instruction{Guard: sass.Always, Op: sass.OpIADD, Mods: sass.Mods{X: true},
				Dsts: []sass.Operand{sass.R(41)}, Srcs: []sass.Operand{sass.R(41), sass.R(sass.RZ)}},
			sass.Instruction{Guard: sass.Always, Op: sass.OpSTG, Mods: sass.Mods{E: true},
				Srcs: []sass.Operand{sass.Mem(40, 0), sass.R(5)}},
		)
		return ins
	})
	for lane := 0; lane < 32; lane++ {
		v, _ := dev.Global.Read32(scratch + uint64(4*lane))
		if v != uint32(lane*3) {
			t.Fatalf("lane %d read %d via generic shared window, want %d", lane, v, lane*3)
		}
	}
}

func TestLocalStackRoundtrip(t *testing.T) {
	dev, scratch := memRun(t, 0, func(off int) []sass.Instruction {
		ins := ldScratch(off)
		ins = append(ins,
			tid(0),
			// Push a frame, spill tid*5, reload, pop.
			alu(sass.OpIADD, sass.Mods{}, 1, sass.R(sass.SP), sass.Imm(-16)),
			sass.New(sass.OpMOV, []sass.Operand{sass.R(sass.SP)}, []sass.Operand{sass.R(1)}),
			alu(sass.OpIMUL, sass.Mods{}, 2, sass.R(0), sass.Imm(5)),
			sass.Instruction{Guard: sass.Always, Op: sass.OpSTL,
				Srcs: []sass.Operand{sass.Mem(sass.SP, 4), sass.R(2)}},
			sass.Instruction{Guard: sass.Always, Op: sass.OpLDL,
				Dsts: []sass.Operand{sass.R(3)},
				Srcs: []sass.Operand{sass.Mem(sass.SP, 4)}},
			alu(sass.OpIADD, sass.Mods{}, sass.SP, sass.R(sass.SP), sass.Imm(16)),
			// out[lane] = R3
			alu(sass.OpSHL, sass.Mods{}, 4, sass.R(0), sass.Imm(2)),
			sass.Instruction{Guard: sass.Always, Op: sass.OpIADD, Mods: sass.Mods{SetCC: true},
				Dsts: []sass.Operand{sass.R(40)}, Srcs: []sass.Operand{sass.R(40), sass.R(4)}},
			sass.Instruction{Guard: sass.Always, Op: sass.OpIADD, Mods: sass.Mods{X: true},
				Dsts: []sass.Operand{sass.R(41)}, Srcs: []sass.Operand{sass.R(41), sass.R(sass.RZ)}},
			sass.Instruction{Guard: sass.Always, Op: sass.OpSTG, Mods: sass.Mods{E: true},
				Srcs: []sass.Operand{sass.Mem(40, 0), sass.R(3)}},
		)
		return ins
	})
	for lane := 0; lane < 32; lane++ {
		v, _ := dev.Global.Read32(scratch + uint64(4*lane))
		if v != uint32(lane*5) {
			t.Fatalf("lane %d local roundtrip = %d, want %d", lane, v, lane*5)
		}
	}
}

func TestAtomicsGlobal(t *testing.T) {
	dev, scratch := memRun(t, 0, func(off int) []sass.Instruction {
		ins := ldScratch(off)
		ins = append(ins,
			tid(0),
			movi(1, 1),
			// All 32 lanes atomically add 1 to scratch[0]; each records old.
			sass.Instruction{Guard: sass.Always, Op: sass.OpATOM,
				Mods: sass.Mods{Atom: sass.AtomADD, E: true, Width: sass.W32},
				Dsts: []sass.Operand{sass.R(2)},
				Srcs: []sass.Operand{sass.Mem(40, 0), sass.R(1)}},
			// MAX of lane id into scratch[1].
			sass.Instruction{Guard: sass.Always, Op: sass.OpATOM,
				Mods: sass.Mods{Atom: sass.AtomMAX, E: true, Width: sass.W32},
				Dsts: []sass.Operand{sass.R(sass.RZ)},
				Srcs: []sass.Operand{sass.Mem(40, 4), sass.R(0)}},
			// store per-lane old value of the ADD at scratch[8+lane].
			alu(sass.OpSHL, sass.Mods{}, 4, sass.R(0), sass.Imm(2)),
			sass.Instruction{Guard: sass.Always, Op: sass.OpIADD, Mods: sass.Mods{SetCC: true},
				Dsts: []sass.Operand{sass.R(40)}, Srcs: []sass.Operand{sass.R(40), sass.R(4)}},
			sass.Instruction{Guard: sass.Always, Op: sass.OpIADD, Mods: sass.Mods{X: true},
				Dsts: []sass.Operand{sass.R(41)}, Srcs: []sass.Operand{sass.R(41), sass.R(sass.RZ)}},
			sass.Instruction{Guard: sass.Always, Op: sass.OpSTG, Mods: sass.Mods{E: true},
				Srcs: []sass.Operand{sass.Mem(40, 32), sass.R(2)}},
		)
		return ins
	})
	if v, _ := dev.Global.Read32(scratch); v != 32 {
		t.Errorf("atomic add total = %d, want 32", v)
	}
	if v, _ := dev.Global.Read32(scratch + 4); v != 31 {
		t.Errorf("atomic max = %d, want 31", v)
	}
	// Old values are a permutation of 0..31 (ascending lane order here).
	seen := map[uint32]bool{}
	for lane := 0; lane < 32; lane++ {
		v, _ := dev.Global.Read32(scratch + uint64(32+4*lane))
		if seen[v] || v > 31 {
			t.Fatalf("atomic old values not a permutation: lane %d old %d", lane, v)
		}
		seen[v] = true
	}
}

func TestAtomicsShared(t *testing.T) {
	dev, scratch := memRun(t, 64, func(off int) []sass.Instruction {
		ins := ldScratch(off)
		ins = append(ins,
			movi(1, 2),
			sass.Instruction{Guard: sass.Always, Op: sass.OpATOMS,
				Mods: sass.Mods{Atom: sass.AtomADD, Width: sass.W32},
				Dsts: []sass.Operand{sass.R(sass.RZ)},
				Srcs: []sass.Operand{sass.Mem(sass.RZ, 0), sass.R(1)}},
			sass.New(sass.OpBAR, nil, nil),
			// lane 0 copies shared[0] to scratch.
			tid(0),
			setp(0, sass.CmpEQ, true, sass.R(0), sass.Imm(0)),
			guarded(sass.Instruction{Op: sass.OpLDS,
				Dsts: []sass.Operand{sass.R(2)},
				Srcs: []sass.Operand{sass.Mem(sass.RZ, 0)}}, 0, false),
			guarded(sass.Instruction{Op: sass.OpSTG, Mods: sass.Mods{E: true},
				Srcs: []sass.Operand{sass.Mem(40, 0), sass.R(2)}}, 0, false),
		)
		return ins
	})
	if v, _ := dev.Global.Read32(scratch); v != 64 {
		t.Errorf("shared atomic total = %d, want 64", v)
	}
}

func TestREDAndCAS(t *testing.T) {
	dev, scratch := memRun(t, 0, func(off int) []sass.Instruction {
		ins := ldScratch(off)
		ins = append(ins,
			tid(0),
			movi(1, 1),
			// RED: reduction without return value.
			sass.Instruction{Guard: sass.Always, Op: sass.OpRED,
				Mods: sass.Mods{Atom: sass.AtomADD, E: true, Width: sass.W32},
				Srcs: []sass.Operand{sass.Mem(40, 0), sass.R(1)}},
			// CAS at scratch[4]: only the first lane (old==0) wins writing 99.
			movi(2, 0),
			movi(3, 99),
			sass.Instruction{Guard: sass.Always, Op: sass.OpATOM,
				Mods: sass.Mods{Atom: sass.AtomCAS, E: true, Width: sass.W32},
				Dsts: []sass.Operand{sass.R(4)},
				Srcs: []sass.Operand{sass.Mem(40, 4), sass.R(2), sass.R(3)}},
		)
		return ins
	})
	if v, _ := dev.Global.Read32(scratch); v != 32 {
		t.Errorf("RED total = %d", v)
	}
	if v, _ := dev.Global.Read32(scratch + 4); v != 99 {
		t.Errorf("CAS result = %d, want 99", v)
	}
}

func TestLDC(t *testing.T) {
	// LDC reads kernel parameters from constant bank 0.
	dev, scratch := memRun(t, 0, func(off int) []sass.Instruction {
		ins := ldScratch(off)
		ins = append(ins,
			tid(0),
			setp(0, sass.CmpEQ, true, sass.R(0), sass.Imm(0)),
			// Read the scratch pointer's low word via LDC [RZ + off].
			guarded(sass.Instruction{Op: sass.OpLDC,
				Dsts: []sass.Operand{sass.R(2)},
				Srcs: []sass.Operand{sass.Mem(sass.RZ, int64(off))}}, 0, false),
			guarded(sass.Instruction{Op: sass.OpSTG, Mods: sass.Mods{E: true},
				Srcs: []sass.Operand{sass.Mem(40, 0), sass.R(2)}}, 0, false),
		)
		return ins
	})
	if v, _ := dev.Global.Read32(scratch); uint64(v) != scratch&0xffffffff {
		t.Errorf("LDC param readback = %#x, want %#x", v, scratch)
	}
}

func TestCoalescingStats(t *testing.T) {
	// A unit-stride warp access should produce few transactions; a fully
	// scattered one, 32.
	run := func(stride int64) uint64 {
		k := &sass.Kernel{Name: "c", Labels: map[string]int{}, NumRegs: 48}
		off := k.AddParam("scratch", 8)
		k.Instrs = []sass.Instruction{
			sass.New(sass.OpMOV, []sass.Operand{sass.R(40)}, []sass.Operand{sass.CMem(0, int64(off))}),
			sass.New(sass.OpMOV, []sass.Operand{sass.R(41)}, []sass.Operand{sass.CMem(0, int64(off+4))}),
			tid(0),
			movi(1, stride),
			alu(sass.OpIMUL, sass.Mods{}, 2, sass.R(0), sass.R(1)),
			{Guard: sass.Always, Op: sass.OpIADD, Mods: sass.Mods{SetCC: true},
				Dsts: []sass.Operand{sass.R(40)}, Srcs: []sass.Operand{sass.R(40), sass.R(2)}},
			{Guard: sass.Always, Op: sass.OpIADD, Mods: sass.Mods{X: true},
				Dsts: []sass.Operand{sass.R(41)}, Srcs: []sass.Operand{sass.R(41), sass.R(sass.RZ)}},
			{Guard: sass.Always, Op: sass.OpLDG, Mods: sass.Mods{E: true},
				Dsts: []sass.Operand{sass.R(3)},
				Srcs: []sass.Operand{sass.Mem(40, 0)}},
			sass.New(sass.OpEXIT, nil, nil),
		}
		if err := k.ResolveLabels(); err != nil {
			t.Fatal(err)
		}
		prog := sass.NewProgram()
		prog.AddKernel(k)
		dev := sim.NewDevice(sim.MiniGPU())
		dev.Alloc(1<<16, "scratch")
		stats, err := dev.Launch(prog, "c", sim.LaunchParams{
			Grid: sim.D1(1), Block: sim.D1(32), Args: []uint64{mem.GlobalBase + 256},
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.GlobalTransactions
	}
	coalesced := run(4)
	scattered := run(256)
	if coalesced >= scattered {
		t.Errorf("coalesced %d >= scattered %d transactions", coalesced, scattered)
	}
	if scattered != 32 {
		t.Errorf("scattered transactions = %d, want 32", scattered)
	}
	if coalesced != 4 {
		t.Errorf("coalesced transactions = %d, want 4 (32 lanes x 4B / 32B lines)", coalesced)
	}
}
