package sim_test

import (
	"reflect"
	"testing"

	"sassi/internal/obs"
	"sassi/internal/sim"
)

// launchStats runs the gid kernel on a fresh device and returns its stats.
func launchStats(t *testing.T, cfg sim.Config, grid, block sim.Dim3) *sim.KernelStats {
	t.Helper()
	prog := storeGlobalIdKernel(t)
	dev := sim.NewDevice(cfg)
	total := grid.Count() * block.Count()
	out := dev.Alloc(uint64(4*total), "out")
	stats, err := dev.Launch(prog, "gid", sim.LaunchParams{
		Grid: grid, Block: block, Args: []uint64{out},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The outputs must be right regardless of execution mode.
	for i := 0; i < total; i++ {
		v, _ := dev.Global.Read32(out + uint64(4*i))
		if v != uint32(i) {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	return stats
}

// TestParallelMatchesSequentialStats is the engine-level determinism
// contract: for a launch free of cross-SM order-sensitive data flow, the
// concurrent-SM engine produces KernelStats bit-equal to the sequential
// escape hatch, and repeated parallel runs are bit-equal to each other.
func TestParallelMatchesSequentialStats(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  sim.Config
	}{
		{"mini", sim.MiniGPU()},
		{"k10", sim.KeplerK10()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			grid, block := sim.D2(6, 3), sim.D2(8, 8)
			seq := tc.cfg
			seq.SequentialSMs = true
			par := tc.cfg
			par.SequentialSMs = false

			want := launchStats(t, seq, grid, block)
			for i := 0; i < 3; i++ {
				got := launchStats(t, par, grid, block)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("parallel run %d stats diverge:\n got %+v\nwant %+v", i, got, want)
				}
			}
		})
	}
}

// launchMetrics runs the gid kernel on a fresh device with a live registry
// and returns the flattened metric snapshot.
func launchMetrics(t *testing.T, cfg sim.Config, grid, block sim.Dim3) map[string]uint64 {
	t.Helper()
	prog := storeGlobalIdKernel(t)
	dev := sim.NewDevice(cfg)
	reg := obs.NewRegistry()
	dev.Metrics = reg
	out := dev.Alloc(uint64(4*grid.Count()*block.Count()), "out")
	if _, err := dev.Launch(prog, "gid", sim.LaunchParams{
		Grid: grid, Block: block, Args: []uint64{out},
	}); err != nil {
		t.Fatal(err)
	}
	return reg.Flat("sm")
}

// TestParallelMatchesSequentialMetrics extends the determinism contract to
// the observability registry: the flattened metric map — per-SM shards
// included — must be bit-equal between the concurrent-SM engine and the
// sequential escape hatch, and across repeated parallel runs. Shard cells
// are single-writer and merges are order-independent sums, so any diff here
// means a shard leaked across SM goroutines.
func TestParallelMatchesSequentialMetrics(t *testing.T) {
	grid, block := sim.D2(6, 3), sim.D2(8, 8)
	seq := sim.KeplerK10()
	seq.SequentialSMs = true
	par := sim.KeplerK10()
	par.SequentialSMs = false

	want := launchMetrics(t, seq, grid, block)
	if want[obs.MSimWarpInstrs] == 0 || want[obs.MSimWarpInstrs+".sm0"] == 0 {
		t.Fatalf("registry not populated: %v", want)
	}
	for i := 0; i < 3; i++ {
		got := launchMetrics(t, par, grid, block)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallel run %d metrics diverge:\n got %v\nwant %v", i, got, want)
		}
	}
}

// TestParallelSMCycleAttribution checks the per-SM cycle vector is populated
// for every SM that received CTAs and Cycles is their max.
func TestParallelSMCycleAttribution(t *testing.T) {
	cfg := sim.MiniGPU()
	stats := launchStats(t, cfg, sim.D1(8), sim.D1(32))
	if len(stats.SMCycles) != cfg.NumSMs {
		t.Fatalf("SMCycles has %d entries, want %d", len(stats.SMCycles), cfg.NumSMs)
	}
	var max uint64
	for sm, c := range stats.SMCycles {
		if c == 0 {
			t.Errorf("SM %d reports zero cycles despite running CTAs", sm)
		}
		if c > max {
			max = c
		}
	}
	if stats.Cycles != max {
		t.Errorf("Cycles = %d, want max(SMCycles) = %d", stats.Cycles, max)
	}
}
