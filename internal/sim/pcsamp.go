package sim

import (
	"sassi/internal/obs/pcsamp"
	"sassi/internal/sass"
)

// takeSample records one PC sample for the instruction whose issue+stall
// window just crossed the sampling boundary. The weight is the number of
// period boundaries the window covered, so long-latency instructions are
// charged all the cycles they consumed — at period 1 every instruction
// samples with weight cost+stall, i.e. exact cycle attribution.
//
// Determinism: st.cycles and st.sampNext are per-SM state advanced only
// by that SM's goroutine in program order, so which instruction samples,
// with what weight and reason, is a pure function of the program and the
// period — never of goroutine scheduling.
func (e *engine) takeSample(st *smShard, w *Warp, pc int, in *sass.Instruction, nexec, cost int, stall, divBefore uint64) {
	n := (st.cycles-st.sampNext)/e.sampPeriod + 1
	st.sampNext += n * e.sampPeriod

	// Classify by where the sampled window's cycles went. The window is
	// cost+stall: for a memory op whose dynamic transaction cost dominates
	// its operand wait, charge the memory system; otherwise an actual
	// scoreboard stall beats the instruction's class, and a divergence
	// event this step produced is reported only for otherwise-unstalled
	// instructions.
	var reason pcsamp.Reason
	dynCost := uint64(cost - issueCost(in)) // memory transaction / handler body add-on
	switch {
	case in.Op == sass.OpBAR:
		reason = pcsamp.ReasonBarrier
	case sass.IsMemoryOp(in.Op) && dynCost >= stall:
		reason = pcsamp.ReasonMemory
	case stall > 0:
		reason = pcsamp.ReasonScoreboard
	case sass.IsMemoryOp(in.Op):
		reason = pcsamp.ReasonMemory
	case st.divergentBranches != divBefore:
		reason = pcsamp.ReasonDivergence
	}

	// Launch-global warp id, matching the MemAccess convention.
	warp := int32(w.CTA.Index*e.warpsPerCTA + w.IDinCTA)
	st.samp.Record(int32(pc), warp, uint16(nexec), reason, uint32(n), w.CallStack)
}

// attachSampler wires a device sampler into the launch engine: per-SM
// buffers into the shards and the first boundary one period out.
func (e *engine) attachSampler(s *pcsamp.Sampler, threadsPerCTA int) {
	e.sampPeriod = s.Period()
	e.warpsPerCTA = (threadsPerCTA + WarpSize - 1) / WarpSize
	e.samp = s.LaunchBegin(e.k, len(e.sms))
	for i := range e.sms {
		e.sms[i].samp = e.samp.SMs[i]
		e.sms[i].sampNext = e.sampPeriod
	}
}
