package sim

import (
	"math/bits"

	"sassi/internal/mem"
	"sassi/internal/sass"
)

// divKind distinguishes divergence-stack entry types.
type divKind uint8

const (
	divSSY divKind = iota // reconvergence token pushed by SSY
	divDEF                // deferred alternate path pushed by a divergent branch
)

// divEntry is one divergence-stack entry: a mask of lanes and the PC where
// they resume.
type divEntry struct {
	kind divKind
	pc   int
	mask uint32
}

// Warp is a group of 32 threads executing in lockstep from a shared PC.
type Warp struct {
	CTA     *CTA
	IDinCTA int

	PC     int
	Active uint32 // lanes executing at PC
	Alive  uint32 // lanes that have not EXITed

	Stack     []divEntry
	CallStack []int

	Threads [WarpSize]*Thread

	AtBarrier bool
	Done      bool

	DynWarpInstrs uint64

	// Scoreboard state for the stall model: clock is the warp's local
	// issue clock, readyAt[slot] the clock value at which the register
	// behind slot (GPRs 0..254, then predicates, then CC — the same
	// regspace layout internal/analysis uses) is readable without a
	// stall. Both live in the warp so the model is per-warp deterministic:
	// cycles do not depend on how SMs or sibling warps interleave, which
	// keeps parallel and sequential engines bit-equal.
	clock   uint64
	readyAt [sbSlots]uint64
}

// Scoreboard slot layout: one slot per GPR, per predicate, plus the CC.
const (
	sbPredBase = sass.NumGPR
	sbCCSlot   = sbPredBase + sass.NumPred
	sbSlots    = sbCCSlot + 1
)

// scoreboard charges the warp's issue-stage hazards for in: it computes
// the read-after-write/write-after-write stall against readyAt, advances
// the warp clock past the stall and the issue cost, and records when the
// instruction's own results become readable. cost is the final issue cost
// including any dynamic memory charge. The returned stall is added to the
// SM's busy cycles by the caller.
func (w *Warp) scoreboard(in *sass.Instruction, cost int) (stall uint64) {
	var buf [24]uint8
	ready := uint64(0)
	consider := func(slot int) {
		if r := w.readyAt[slot]; r > ready {
			ready = r
		}
	}
	for _, r := range in.AppendGPRSrcs(buf[:0]) {
		if r != sass.RZ {
			consider(int(r))
		}
	}
	for _, p := range in.AppendGPRDsts(buf[:0]) {
		if p != sass.RZ {
			consider(int(p)) // WAW: the previous write must retire first
		}
	}
	if !in.Guard.IsAlways() && in.Guard.Reg != sass.PT {
		consider(sbPredBase + int(in.Guard.Reg))
	}
	for _, s := range in.Srcs {
		if s.Kind == sass.OpdPred && s.Reg != sass.PT {
			consider(sbPredBase + int(s.Reg))
		}
	}
	if in.Mods.X {
		consider(sbCCSlot)
	}
	if in.Mods.SetCC {
		consider(sbCCSlot)
	}
	if ready > w.clock {
		stall = ready - w.clock
	}
	issue := w.clock + stall
	w.clock = issue + uint64(cost)
	retire := w.clock + uint64(sass.ResultLatency(in))
	for _, d := range in.AppendGPRDsts(buf[:0]) {
		if d != sass.RZ {
			w.readyAt[d] = retire
		}
	}
	for _, d := range in.Dsts {
		if d.Kind == sass.OpdPred && d.Reg != sass.PT {
			w.readyAt[sbPredBase+int(d.Reg)] = retire
		}
	}
	if in.Mods.SetCC {
		w.readyAt[sbCCSlot] = retire
	}
	return stall
}

// ActiveMask returns the current active lane mask.
func (w *Warp) ActiveMask() uint32 { return w.Active }

// NumActive returns the number of active lanes.
func (w *Warp) NumActive() int { return bits.OnesCount32(w.Active) }

// Thread returns the thread in the given lane (may be nil in a partial
// trailing warp).
func (w *Warp) Thread(lane int) *Thread { return w.Threads[lane] }

// Lanes iterates the set bits of mask, calling fn with each lane index in
// ascending order.
func Lanes(mask uint32, fn func(lane int)) {
	for m := mask; m != 0; m &= m - 1 {
		fn(bits.TrailingZeros32(m))
	}
}

// exitLanes removes lanes from the warp entirely (EXIT semantics): from the
// active and alive masks and from every divergence-stack entry.
func (w *Warp) exitLanes(mask uint32) {
	w.Active &^= mask
	w.Alive &^= mask
	for i := range w.Stack {
		w.Stack[i].mask &^= mask
	}
}

// popToNonEmpty pops divergence-stack entries until one yields a non-empty
// live mask, activating it. It reports false when the warp has fully
// retired.
func (w *Warp) popToNonEmpty() bool {
	for len(w.Stack) > 0 {
		e := w.Stack[len(w.Stack)-1]
		w.Stack = w.Stack[:len(w.Stack)-1]
		m := e.mask & w.Alive
		if m != 0 {
			w.Active = m
			w.PC = e.pc
			return true
		}
	}
	w.Done = w.Alive == 0
	if !w.Done && w.Active == 0 {
		// No stack entries but live lanes with empty active mask cannot
		// happen in well-formed programs; mark done defensively.
		w.Done = true
	}
	return !w.Done && w.Active != 0
}

// DivFrame is the exported view of one divergence-stack entry, used by
// instrumentation handlers that audit warp control state (the CFI checker)
// and by the control-state fault injector.
type DivFrame struct {
	// SSY marks a reconvergence token (pushed by SSY); false marks a
	// deferred alternate path pushed by a divergent branch.
	SSY  bool
	PC   int
	Mask uint32
}

// DivDepth returns the divergence-stack depth.
func (w *Warp) DivDepth() int { return len(w.Stack) }

// DivFrameAt returns divergence-stack entry i (0 is the bottom).
func (w *Warp) DivFrameAt(i int) DivFrame {
	e := w.Stack[i]
	return DivFrame{SSY: e.kind == divSSY, PC: e.pc, Mask: e.mask}
}

// SetDivFramePC overwrites the resume PC of divergence-stack entry i —
// fault-injection only.
func (w *Warp) SetDivFramePC(i, pc int) { w.Stack[i].pc = pc }

// SetDivFrameMask overwrites the lane mask of divergence-stack entry i —
// fault-injection only.
func (w *Warp) SetDivFrameMask(i int, mask uint32) { w.Stack[i].mask = mask }

// CallDepth returns the call-stack depth.
func (w *Warp) CallDepth() int { return len(w.CallStack) }

// ReturnAddr returns call-stack entry i (0 is the bottom, i.e. the
// outermost frame's return address).
func (w *Warp) ReturnAddr(i int) int { return w.CallStack[i] }

// SetReturnAddr overwrites call-stack entry i — fault-injection only.
func (w *Warp) SetReturnAddr(i, pc int) { w.CallStack[i] = pc }

// PushReturnAddr pushes a forged frame onto the call stack —
// fault-injection only (models a spurious/rewritten call).
func (w *Warp) PushReturnAddr(pc int) { w.CallStack = append(w.CallStack, pc) }

// CTA is one cooperative thread array (thread block) resident on an SM.
type CTA struct {
	Index            int // flat CTA index within the grid
	CtaX, CtaY, CtaZ uint32
	Shared           *mem.Shared
	Warps            []*Warp
	SM               int
	// Kernel is the (possibly instrumented) kernel this CTA executes —
	// handlers that keep per-kernel shadow state key off it.
	Kernel *sass.Kernel

	barrierGen int
	// traceStart is the SM-cycle count when the CTA became resident (used
	// only when the device records a trace).
	traceStart uint64
	// slab is the arena slab backing this CTA's threads (predecoded
	// engine only); returned to the arena at retirement.
	slab *ctaSlab
}

// liveWarps returns the warps that are neither done nor nil.
func (c *CTA) liveWarps() int {
	n := 0
	for _, w := range c.Warps {
		if !w.Done {
			n++
		}
	}
	return n
}

// barrierReady reports whether every live warp has arrived at the barrier.
func (c *CTA) barrierReady() bool {
	for _, w := range c.Warps {
		if !w.Done && !w.AtBarrier {
			return false
		}
	}
	return true
}

// releaseBarrier lets all warps proceed past the barrier.
func (c *CTA) releaseBarrier() {
	c.barrierGen++
	for _, w := range c.Warps {
		w.AtBarrier = false
	}
}
