package sim_test

import (
	"testing"

	"sassi/internal/sass"
	"sassi/internal/sim"
)

// storeGlobalIdKernel writes a grid-unique id to out[gid] using 2D geometry.
func storeGlobalIdKernel(t *testing.T) *sass.Program {
	t.Helper()
	k := &sass.Kernel{Name: "gid", Labels: map[string]int{}, NumRegs: 48}
	off := k.AddParam("out", 8)
	k.Instrs = []sass.Instruction{
		sass.New(sass.OpMOV, []sass.Operand{sass.R(40)}, []sass.Operand{sass.CMem(0, int64(off))}),
		sass.New(sass.OpMOV, []sass.Operand{sass.R(41)}, []sass.Operand{sass.CMem(0, int64(off+4))}),
		// gid = (ctaid.y * nctaid.x + ctaid.x) * (ntid.x*ntid.y)
		//     + tid.y*ntid.x + tid.x
		sass.New(sass.OpS2R, []sass.Operand{sass.R(0)}, []sass.Operand{sass.SReg(sass.SRCtaidY)}),
		sass.New(sass.OpS2R, []sass.Operand{sass.R(1)}, []sass.Operand{sass.SReg(sass.SRNCtaidX)}),
		sass.New(sass.OpS2R, []sass.Operand{sass.R(2)}, []sass.Operand{sass.SReg(sass.SRCtaidX)}),
		{Guard: sass.Always, Op: sass.OpIMAD, Dsts: []sass.Operand{sass.R(3)},
			Srcs: []sass.Operand{sass.R(0), sass.R(1), sass.R(2)}},
		sass.New(sass.OpS2R, []sass.Operand{sass.R(4)}, []sass.Operand{sass.SReg(sass.SRNTidX)}),
		sass.New(sass.OpS2R, []sass.Operand{sass.R(5)}, []sass.Operand{sass.SReg(sass.SRNTidY)}),
		alu(sass.OpIMUL, sass.Mods{}, 6, sass.R(4), sass.R(5)),
		{Guard: sass.Always, Op: sass.OpIMAD, Dsts: []sass.Operand{sass.R(7)},
			Srcs: []sass.Operand{sass.R(3), sass.R(6), sass.R(sass.RZ)}},
		sass.New(sass.OpS2R, []sass.Operand{sass.R(8)}, []sass.Operand{sass.SReg(sass.SRTidY)}),
		sass.New(sass.OpS2R, []sass.Operand{sass.R(9)}, []sass.Operand{sass.SReg(sass.SRTidX)}),
		{Guard: sass.Always, Op: sass.OpIMAD, Dsts: []sass.Operand{sass.R(10)},
			Srcs: []sass.Operand{sass.R(8), sass.R(4), sass.R(9)}},
		alu(sass.OpIADD, sass.Mods{}, 11, sass.R(7), sass.R(10)),
		// out[gid] = gid
		alu(sass.OpSHL, sass.Mods{}, 12, sass.R(11), sass.Imm(2)),
		{Guard: sass.Always, Op: sass.OpIADD, Mods: sass.Mods{SetCC: true},
			Dsts: []sass.Operand{sass.R(40)}, Srcs: []sass.Operand{sass.R(40), sass.R(12)}},
		{Guard: sass.Always, Op: sass.OpIADD, Mods: sass.Mods{X: true},
			Dsts: []sass.Operand{sass.R(41)}, Srcs: []sass.Operand{sass.R(41), sass.R(sass.RZ)}},
		{Guard: sass.Always, Op: sass.OpSTG, Mods: sass.Mods{E: true},
			Srcs: []sass.Operand{sass.Mem(40, 0), sass.R(11)}},
		sass.New(sass.OpEXIT, nil, nil),
	}
	if err := k.ResolveLabels(); err != nil {
		t.Fatal(err)
	}
	prog := sass.NewProgram()
	prog.AddKernel(k)
	return prog
}

func TestLaunchGeometry2D(t *testing.T) {
	prog := storeGlobalIdKernel(t)
	dev := sim.NewDevice(sim.MiniGPU())
	grid := sim.D2(3, 2)
	block := sim.D2(8, 4) // 32 threads per CTA
	total := grid.Count() * block.Count()
	out := dev.Alloc(uint64(4*total), "out")
	stats, err := dev.Launch(prog, "gid", sim.LaunchParams{
		Grid: grid, Block: block, Args: []uint64{out},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CTAs != 6 || stats.Threads != total {
		t.Errorf("geometry stats = %+v", stats)
	}
	for i := 0; i < total; i++ {
		v, _ := dev.Global.Read32(out + uint64(4*i))
		if v != uint32(i) {
			t.Fatalf("out[%d] = %d (2D indexing broken)", i, v)
		}
	}
}

func TestLaunchPartialWarp(t *testing.T) {
	prog := storeGlobalIdKernel(t)
	dev := sim.NewDevice(sim.MiniGPU())
	out := dev.Alloc(4*50, "out")
	stats, err := dev.Launch(prog, "gid", sim.LaunchParams{
		Grid: sim.D1(1), Block: sim.D1(50), Args: []uint64{out}, // 1.5 warps
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Threads != 50 {
		t.Errorf("threads = %d", stats.Threads)
	}
	for i := 0; i < 50; i++ {
		v, _ := dev.Global.Read32(out + uint64(4*i))
		if v != uint32(i) {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestLaunchDistributesAcrossSMs(t *testing.T) {
	prog := storeGlobalIdKernel(t)
	cfg := sim.MiniGPU() // 2 SMs
	dev := sim.NewDevice(cfg)
	out := dev.Alloc(4*32*8, "out")
	stats, err := dev.Launch(prog, "gid", sim.LaunchParams{
		Grid: sim.D1(8), Block: sim.D1(32), Args: []uint64{out},
	})
	if err != nil {
		t.Fatal(err)
	}
	busy := 0
	for _, c := range stats.SMCycles {
		if c > 0 {
			busy++
		}
	}
	if busy != cfg.NumSMs {
		t.Errorf("busy SMs = %d, want %d", busy, cfg.NumSMs)
	}
	if stats.Cycles == 0 {
		t.Error("no kernel cycles")
	}
	// Kernel time is the max, not the sum.
	var sum uint64
	for _, c := range stats.SMCycles {
		if c > stats.Cycles {
			t.Error("SM cycles exceed kernel cycles")
		}
		sum += c
	}
	if stats.Cycles >= sum && busy > 1 {
		t.Error("kernel cycles not max-over-SMs")
	}
}

func TestLaunchSharedMemoryLimit(t *testing.T) {
	k := &sass.Kernel{Name: "s", Labels: map[string]int{},
		SharedBytes: 1 << 20, // over the SM limit
		Instrs:      []sass.Instruction{sass.New(sass.OpEXIT, nil, nil)}}
	k.AddParam("out", 8)
	prog := sass.NewProgram()
	prog.AddKernel(k)
	dev := sim.NewDevice(sim.MiniGPU())
	if _, err := dev.Launch(prog, "s", sim.LaunchParams{
		Grid: sim.D1(1), Block: sim.D1(32), Args: []uint64{0},
	}); err == nil {
		t.Error("oversized shared memory accepted")
	}
}

func TestLaunchStatsInjectedSeparation(t *testing.T) {
	prog := storeGlobalIdKernel(t)
	dev := sim.NewDevice(sim.MiniGPU())
	out := dev.Alloc(4*32, "out")
	stats, err := dev.Launch(prog, "gid", sim.LaunchParams{
		Grid: sim.D1(1), Block: sim.D1(32), Args: []uint64{out},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.InjectedWarpInstrs != 0 || stats.HandlerCalls != 0 {
		t.Error("uninstrumented run reports instrumentation activity")
	}
	if stats.GlobalTransactions == 0 {
		t.Error("no global transactions counted")
	}
	if stats.ThreadInstrs < stats.WarpInstrs {
		t.Error("thread instrs below warp instrs on a full warp")
	}
}

func TestDim3Count(t *testing.T) {
	if (sim.Dim3{}).Count() != 1 {
		t.Error("zero dim count")
	}
	if sim.D2(3, 4).Count() != 12 {
		t.Error("2D count")
	}
	if (sim.Dim3{X: 2, Y: 3, Z: 4}).Count() != 24 {
		t.Error("3D count")
	}
}
