package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

const pageShift = 16 // 64 KiB pages
const pageSize = 1 << pageShift

// Global is device (global) memory: a sparse paged byte store with a bump
// allocator and allocation tracking. Accesses outside any live allocation
// fault, which is how the simulator detects wild pointers.
//
// Global is safe for concurrent use: instrumentation handlers execute one
// goroutine per warp lane and update counters in device memory with atomics.
type Global struct {
	mu     sync.Mutex
	pages  map[uint64]*[pageSize]byte
	next   uint64
	allocs []allocation // sorted by base
	strict bool
}

type allocation struct {
	base uint64
	size uint64
	name string
}

// NewGlobal returns an empty device memory with strict bounds checking.
func NewGlobal() *Global {
	return &Global{pages: make(map[uint64]*[pageSize]byte), next: GlobalBase, strict: true}
}

// SetStrictBounds selects the access-checking model. Strict mode faults on
// any access outside an exact allocation — best for catching workload bugs.
// Lenient mode only faults outside the allocated heap range, modeling real
// GPUs where the allocator maps allocations contiguously and a corrupted
// pointer usually lands in *some* mapped page (so fault-injection campaigns
// see silent corruption rather than a fault, as on hardware).
func (g *Global) SetStrictBounds(strict bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.strict = strict
}

// Alloc reserves size bytes of device memory and returns its base address.
// Allocations are 256-byte aligned, like cudaMalloc.
func (g *Global) Alloc(size uint64, name string) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if size == 0 {
		size = 1
	}
	base := (g.next + 255) &^ 255
	g.next = base + size
	g.allocs = append(g.allocs, allocation{base: base, size: size, name: name})
	return base
}

// findAlloc validates [addr, addr+n) against the checking model.
// Callers hold g.mu.
func (g *Global) findAlloc(addr, n uint64) error {
	if !g.strict {
		// Model a multi-GiB mapped heap (Tesla-class boards): anything in
		// the 4 GiB window above the heap base is considered mapped, so
		// low-half pointer corruption reads/writes stray data instead of
		// faulting; only high-half corruption leaves the window.
		if addr >= GlobalBase && addr+n <= GlobalBase+(4<<30) {
			return nil
		}
		return &Fault{Space: SpaceGlobal, Addr: addr, Why: "address outside the device heap"}
	}
	i := sort.Search(len(g.allocs), func(i int) bool {
		return g.allocs[i].base+g.allocs[i].size > addr
	})
	if i < len(g.allocs) && g.allocs[i].base <= addr && addr+n <= g.allocs[i].base+g.allocs[i].size {
		return nil
	}
	return &Fault{Space: SpaceGlobal, Addr: addr, Why: "address outside any allocation"}
}

// page returns the page backing addr, creating it if needed. Callers hold g.mu.
func (g *Global) page(addr uint64) *[pageSize]byte {
	pn := addr >> pageShift
	p := g.pages[pn]
	if p == nil {
		p = new([pageSize]byte)
		g.pages[pn] = p
	}
	return p
}

func (g *Global) readLocked(addr uint64, buf []byte) error {
	if err := g.findAlloc(addr, uint64(len(buf))); err != nil {
		f := err.(*Fault)
		f.Write = false
		return f
	}
	for len(buf) > 0 {
		off := addr & (pageSize - 1)
		var n int
		// Reads of never-written pages return zeros without materializing
		// the page (keeps lenient-mode stray reads cheap).
		if p := g.pages[addr>>pageShift]; p != nil {
			n = copy(buf, p[off:])
		} else {
			n = len(buf)
			if rem := pageSize - int(off); rem < n {
				n = rem
			}
			for i := 0; i < n; i++ {
				buf[i] = 0
			}
		}
		buf = buf[n:]
		addr += uint64(n)
	}
	return nil
}

func (g *Global) writeLocked(addr uint64, data []byte) error {
	if err := g.findAlloc(addr, uint64(len(data))); err != nil {
		f := err.(*Fault)
		f.Write = true
		return f
	}
	for len(data) > 0 {
		p := g.page(addr)
		off := addr & (pageSize - 1)
		n := copy(p[off:], data)
		data = data[n:]
		addr += uint64(n)
	}
	return nil
}

// Read copies device memory into buf, faulting on unmapped addresses.
func (g *Global) Read(addr uint64, buf []byte) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.readLocked(addr, buf)
}

// Write copies buf into device memory, faulting on unmapped addresses.
func (g *Global) Write(addr uint64, data []byte) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.writeLocked(addr, data)
}

// Read32 loads a 32-bit word.
func (g *Global) Read32(addr uint64) (uint32, error) {
	var b [4]byte
	if err := g.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// Write32 stores a 32-bit word.
func (g *Global) Write32(addr uint64, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return g.Write(addr, b[:])
}

// Read64 loads a 64-bit word.
func (g *Global) Read64(addr uint64) (uint64, error) {
	var b [8]byte
	if err := g.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// Write64 stores a 64-bit word.
func (g *Global) Write64(addr uint64, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return g.Write(addr, b[:])
}

// Atomic32 applies f to the 32-bit word at addr under the memory lock and
// returns the old value.
func (g *Global) Atomic32(addr uint64, f func(old uint32) uint32) (uint32, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	var b [4]byte
	if err := g.readLocked(addr, b[:]); err != nil {
		return 0, err
	}
	old := binary.LittleEndian.Uint32(b[:])
	binary.LittleEndian.PutUint32(b[:], f(old))
	if err := g.writeLocked(addr, b[:]); err != nil {
		return 0, err
	}
	return old, nil
}

// Atomic64 applies f to the 64-bit word at addr under the memory lock and
// returns the old value.
func (g *Global) Atomic64(addr uint64, f func(old uint64) uint64) (uint64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	var b [8]byte
	if err := g.readLocked(addr, b[:]); err != nil {
		return 0, err
	}
	old := binary.LittleEndian.Uint64(b[:])
	binary.LittleEndian.PutUint64(b[:], f(old))
	if err := g.writeLocked(addr, b[:]); err != nil {
		return 0, err
	}
	return old, nil
}

// Footprint returns the total bytes currently allocated.
func (g *Global) Footprint() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	var n uint64
	for _, a := range g.allocs {
		n += a.size
	}
	return n
}

// Describe returns a human-readable allocation map (debugging aid).
func (g *Global) Describe() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := ""
	for _, a := range g.allocs {
		s += fmt.Sprintf("[0x%x,0x%x) %s (%d bytes)\n", a.base, a.base+a.size, a.name, a.size)
	}
	return s
}
