package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

const pageShift = 16 // 64 KiB pages
const pageSize = 1 << pageShift

// numStripes is the number of data locks global memory is sharded over.
// Pages map onto stripes by page number, so SMs touching disjoint address
// ranges (the common case after coalescing) never contend.
const numStripes = 64

// Global is device (global) memory: a sparse paged byte store with a bump
// allocator and allocation tracking. Accesses outside any live allocation
// fault, which is how the simulator detects wild pointers.
//
// Global is safe for concurrent use from many goroutines: SMs execute in
// parallel and instrumentation handlers may run one goroutine per warp
// lane. Data accesses are serialized per page stripe rather than globally,
// so traffic to disjoint ranges proceeds in parallel while ATOM
// read-modify-write semantics stay exact (the stripe lock covers the whole
// RMW). Metadata (page table, allocator, bounds mode) sits behind a
// separate RWMutex.
type Global struct {
	mu      sync.RWMutex // guards pages, next, allocs, strict
	stripes [numStripes]sync.Mutex
	pages   map[uint64]*[pageSize]byte
	next    uint64
	allocs  []allocation // sorted by base
	strict  bool
}

type allocation struct {
	base uint64
	size uint64
	name string
}

// NewGlobal returns an empty device memory with strict bounds checking.
func NewGlobal() *Global {
	return &Global{pages: make(map[uint64]*[pageSize]byte), next: GlobalBase, strict: true}
}

// SetStrictBounds selects the access-checking model. Strict mode faults on
// any access outside an exact allocation — best for catching workload bugs.
// Lenient mode only faults outside the allocated heap range, modeling real
// GPUs where the allocator maps allocations contiguously and a corrupted
// pointer usually lands in *some* mapped page (so fault-injection campaigns
// see silent corruption rather than a fault, as on hardware).
func (g *Global) SetStrictBounds(strict bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.strict = strict
}

// Alloc reserves size bytes of device memory and returns its base address.
// Allocations are 256-byte aligned, like cudaMalloc.
func (g *Global) Alloc(size uint64, name string) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if size == 0 {
		size = 1
	}
	base := (g.next + 255) &^ 255
	g.next = base + size
	g.allocs = append(g.allocs, allocation{base: base, size: size, name: name})
	return base
}

// lockRange acquires the data stripes covering [addr, addr+n) in ascending
// stripe order (the deadlock-freedom invariant every locker follows) and
// returns the matching unlock.
func (g *Global) lockRange(addr, n uint64) func() {
	if n == 0 {
		n = 1
	}
	first := addr >> pageShift
	last := (addr + n - 1) >> pageShift
	if first == last {
		s := &g.stripes[first%numStripes]
		s.Lock()
		return s.Unlock
	}
	if last-first+1 >= numStripes {
		for i := range g.stripes {
			g.stripes[i].Lock()
		}
		return func() {
			for i := range g.stripes {
				g.stripes[i].Unlock()
			}
		}
	}
	var held [numStripes]bool
	for pn := first; pn <= last; pn++ {
		held[pn%numStripes] = true
	}
	for i := range held {
		if held[i] {
			g.stripes[i].Lock()
		}
	}
	return func() {
		for i := range held {
			if held[i] {
				g.stripes[i].Unlock()
			}
		}
	}
}

// findAlloc validates [addr, addr+n) against the checking model.
// Callers hold g.mu (read or write).
func (g *Global) findAlloc(addr, n uint64) error {
	if !g.strict {
		// Model a multi-GiB mapped heap (Tesla-class boards): anything in
		// the 4 GiB window above the heap base is considered mapped, so
		// low-half pointer corruption reads/writes stray data instead of
		// faulting; only high-half corruption leaves the window.
		if addr >= GlobalBase && addr+n <= GlobalBase+(4<<30) {
			return nil
		}
		return &Fault{Space: SpaceGlobal, Addr: addr, Why: "address outside the device heap"}
	}
	i := sort.Search(len(g.allocs), func(i int) bool {
		return g.allocs[i].base+g.allocs[i].size > addr
	})
	if i < len(g.allocs) && g.allocs[i].base <= addr && addr+n <= g.allocs[i].base+g.allocs[i].size {
		return nil
	}
	return &Fault{Space: SpaceGlobal, Addr: addr, Why: "address outside any allocation"}
}

// checkAlloc is findAlloc under the metadata read lock.
func (g *Global) checkAlloc(addr, n uint64) error {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.findAlloc(addr, n)
}

// pageRO returns the page backing addr, or nil if it was never written.
func (g *Global) pageRO(pn uint64) *[pageSize]byte {
	g.mu.RLock()
	p := g.pages[pn]
	g.mu.RUnlock()
	return p
}

// pageRW returns the page backing addr, creating it if needed. The caller
// holds the stripe covering pn, so no other goroutine can race on this
// page's contents; only the map insert itself needs the write lock.
func (g *Global) pageRW(pn uint64) *[pageSize]byte {
	g.mu.RLock()
	p := g.pages[pn]
	g.mu.RUnlock()
	if p != nil {
		return p
	}
	g.mu.Lock()
	p = g.pages[pn]
	if p == nil {
		p = new([pageSize]byte)
		g.pages[pn] = p
	}
	g.mu.Unlock()
	return p
}

// readData copies out of the page store. Callers hold the covering stripes.
func (g *Global) readData(addr uint64, buf []byte) {
	for len(buf) > 0 {
		off := addr & (pageSize - 1)
		var n int
		// Reads of never-written pages return zeros without materializing
		// the page (keeps lenient-mode stray reads cheap).
		if p := g.pageRO(addr >> pageShift); p != nil {
			n = copy(buf, p[off:])
		} else {
			n = len(buf)
			if rem := pageSize - int(off); rem < n {
				n = rem
			}
			for i := 0; i < n; i++ {
				buf[i] = 0
			}
		}
		buf = buf[n:]
		addr += uint64(n)
	}
}

// writeData copies into the page store. Callers hold the covering stripes.
func (g *Global) writeData(addr uint64, data []byte) {
	for len(data) > 0 {
		p := g.pageRW(addr >> pageShift)
		off := addr & (pageSize - 1)
		n := copy(p[off:], data)
		data = data[n:]
		addr += uint64(n)
	}
}

// Read copies device memory into buf, faulting on unmapped addresses.
func (g *Global) Read(addr uint64, buf []byte) error {
	if err := g.checkAlloc(addr, uint64(len(buf))); err != nil {
		f := err.(*Fault)
		f.Write = false
		return f
	}
	unlock := g.lockRange(addr, uint64(len(buf)))
	defer unlock()
	g.readData(addr, buf)
	return nil
}

// Write copies buf into device memory, faulting on unmapped addresses.
func (g *Global) Write(addr uint64, data []byte) error {
	if err := g.checkAlloc(addr, uint64(len(data))); err != nil {
		f := err.(*Fault)
		f.Write = true
		return f
	}
	unlock := g.lockRange(addr, uint64(len(data)))
	defer unlock()
	g.writeData(addr, data)
	return nil
}

// Read32 loads a 32-bit word.
func (g *Global) Read32(addr uint64) (uint32, error) {
	var b [4]byte
	if err := g.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// Write32 stores a 32-bit word.
func (g *Global) Write32(addr uint64, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return g.Write(addr, b[:])
}

// Read64 loads a 64-bit word.
func (g *Global) Read64(addr uint64) (uint64, error) {
	var b [8]byte
	if err := g.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// Write64 stores a 64-bit word.
func (g *Global) Write64(addr uint64, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return g.Write(addr, b[:])
}

// Atomic32 applies f to the 32-bit word at addr atomically (the covering
// stripe lock spans the whole read-modify-write) and returns the old value.
func (g *Global) Atomic32(addr uint64, f func(old uint32) uint32) (uint32, error) {
	if err := g.checkAlloc(addr, 4); err != nil {
		fl := err.(*Fault)
		fl.Write = true
		return 0, fl
	}
	unlock := g.lockRange(addr, 4)
	defer unlock()
	var b [4]byte
	g.readData(addr, b[:])
	old := binary.LittleEndian.Uint32(b[:])
	binary.LittleEndian.PutUint32(b[:], f(old))
	g.writeData(addr, b[:])
	return old, nil
}

// Atomic64 applies f to the 64-bit word at addr atomically and returns the
// old value.
func (g *Global) Atomic64(addr uint64, f func(old uint64) uint64) (uint64, error) {
	if err := g.checkAlloc(addr, 8); err != nil {
		fl := err.(*Fault)
		fl.Write = true
		return 0, fl
	}
	unlock := g.lockRange(addr, 8)
	defer unlock()
	var b [8]byte
	g.readData(addr, b[:])
	old := binary.LittleEndian.Uint64(b[:])
	binary.LittleEndian.PutUint64(b[:], f(old))
	g.writeData(addr, b[:])
	return old, nil
}

// Footprint returns the total bytes currently allocated.
func (g *Global) Footprint() uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var n uint64
	for _, a := range g.allocs {
		n += a.size
	}
	return n
}

// Describe returns a human-readable allocation map (debugging aid).
func (g *Global) Describe() string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	s := ""
	for _, a := range g.allocs {
		s += fmt.Sprintf("[0x%x,0x%x) %s (%d bytes)\n", a.base, a.base+a.size, a.name, a.size)
	}
	return s
}
