package mem

import "encoding/binary"

// Shared is one CTA's shared-memory scratchpad.
type Shared struct {
	data []byte
}

// NewShared returns a scratchpad of the given size.
func NewShared(size int) *Shared { return &Shared{data: make([]byte, size)} }

// Size returns the scratchpad capacity in bytes.
func (s *Shared) Size() int { return len(s.data) }

func (s *Shared) check(off uint64, n int, write bool) error {
	if off+uint64(n) > uint64(len(s.data)) {
		return &Fault{Space: SpaceShared, Addr: SharedBase + off, Write: write,
			Why: "offset beyond CTA shared allocation"}
	}
	return nil
}

// Read copies shared memory into buf.
func (s *Shared) Read(off uint64, buf []byte) error {
	if err := s.check(off, len(buf), false); err != nil {
		return err
	}
	copy(buf, s.data[off:])
	return nil
}

// Write copies buf into shared memory.
func (s *Shared) Write(off uint64, data []byte) error {
	if err := s.check(off, len(data), true); err != nil {
		return err
	}
	copy(s.data[off:], data)
	return nil
}

// Read32 loads a 32-bit word at byte offset off.
func (s *Shared) Read32(off uint64) (uint32, error) {
	if err := s.check(off, 4, false); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(s.data[off:]), nil
}

// Write32 stores a 32-bit word at byte offset off.
func (s *Shared) Write32(off uint64, v uint32) error {
	if err := s.check(off, 4, true); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(s.data[off:], v)
	return nil
}

// Local is one thread's local memory: its stack (spills, instrumentation
// frames, parameter objects) plus compiler-allocated local arrays.
//
// The stack pointer register (R1 by ABI) holds a byte offset within this
// space; the generic-space view of a local address is LocalBase+offset.
//
// Backing storage is lazy: most threads of most kernels never touch their
// stack, so the data slice is only materialized on the first write (the
// default 4 KiB per thread would otherwise dominate per-launch
// allocations). Reads before any write return zeros, exactly what an
// eager zeroed allocation would hold.
type Local struct {
	size int
	data []byte
}

// NewLocal returns a thread-local memory of the given size. The stack
// pointer starts at Size (the stack grows down).
func NewLocal(size int) *Local { return &Local{size: size} }

// Reset reinitializes l to an empty local memory of the given size,
// releasing any materialized storage. It lets pooled allocators reuse
// Local values across launches.
func (l *Local) Reset(size int) {
	l.size = size
	l.data = nil
}

// Size returns the local memory capacity in bytes.
func (l *Local) Size() int { return l.size }

func (l *Local) check(off uint64, n int, write bool) error {
	if off+uint64(n) > uint64(l.size) {
		return &Fault{Space: SpaceLocal, Addr: LocalBase + off, Write: write,
			Why: "local access beyond per-thread allocation (stack overflow?)"}
	}
	return nil
}

// materialize allocates the backing storage on first write.
func (l *Local) materialize() {
	if l.data == nil {
		l.data = make([]byte, l.size)
	}
}

// Read copies local memory into buf.
func (l *Local) Read(off uint64, buf []byte) error {
	if err := l.check(off, len(buf), false); err != nil {
		return err
	}
	if l.data == nil {
		clear(buf)
		return nil
	}
	copy(buf, l.data[off:])
	return nil
}

// Write copies buf into local memory.
func (l *Local) Write(off uint64, data []byte) error {
	if err := l.check(off, len(data), true); err != nil {
		return err
	}
	l.materialize()
	copy(l.data[off:], data)
	return nil
}

// Read32 loads a 32-bit word at byte offset off.
func (l *Local) Read32(off uint64) (uint32, error) {
	if err := l.check(off, 4, false); err != nil {
		return 0, err
	}
	if l.data == nil {
		return 0, nil
	}
	return binary.LittleEndian.Uint32(l.data[off:]), nil
}

// Write32 stores a 32-bit word at byte offset off.
func (l *Local) Write32(off uint64, v uint32) error {
	if err := l.check(off, 4, true); err != nil {
		return err
	}
	l.materialize()
	binary.LittleEndian.PutUint32(l.data[off:], v)
	return nil
}
