package mem

import "sassi/internal/obs"

// PublishHierarchy refreshes the per-level memory-hierarchy gauges from
// device-lifetime totals. Caches accumulate across launches, so these are
// gauges set to the current cumulative counts rather than counters; the
// caller invokes this once per kernel exit from a single goroutine. A nil
// registry is a no-op.
func PublishHierarchy(reg *obs.Registry, l1, l2 CacheStats, dramTransactions uint64) {
	if reg == nil {
		return
	}
	reg.Gauge(obs.MMemL1Accesses).Set(l1.Accesses)
	reg.Gauge(obs.MMemL1Hits).Set(l1.Hits)
	reg.Gauge(obs.MMemL1Misses).Set(l1.Misses)
	reg.Gauge(obs.MMemL1Evictions).Set(l1.Evictions)
	reg.Gauge(obs.MMemL2Accesses).Set(l2.Accesses)
	reg.Gauge(obs.MMemL2Hits).Set(l2.Hits)
	reg.Gauge(obs.MMemL2Misses).Set(l2.Misses)
	reg.Gauge(obs.MMemL2Evictions).Set(l2.Evictions)
	reg.Gauge(obs.MMemDRAMTransact).Set(dramTransactions)
}
