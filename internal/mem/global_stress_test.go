package mem

import (
	"encoding/binary"
	"sync"
	"testing"
)

// TestGlobalConcurrentAtomics hammers one Global from many goroutines —
// atomic RMWs on shared counters, plain writes to disjoint slots, and reads
// that force lazy page materialization — then checks every count landed.
// Run under -race this doubles as the striped-lock correctness proof.
func TestGlobalConcurrentAtomics(t *testing.T) {
	g := NewGlobal()
	const (
		workers = 8
		iters   = 2000
	)
	// counters spread over several pages so multiple stripes are in play;
	// slots gives each worker private cells on shared pages.
	counters := g.Alloc(8*64*1024, "counters")
	slots := g.Alloc(4*workers*iters, "slots")

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Shared 64-bit counter, one per 4 KiB so the set spans pages.
				c := counters + uint64((i%128)*4096)
				if _, err := g.Atomic64(c, func(v uint64) uint64 { return v + 1 }); err != nil {
					t.Error(err)
					return
				}
				// Private slot write + read back.
				s := slots + uint64(4*(w*iters+i))
				if err := g.Write32(s, uint32(i)); err != nil {
					t.Error(err)
					return
				}
				if v, err := g.Read32(s); err != nil || v != uint32(i) {
					t.Errorf("slot readback: %d, %v", v, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	var total uint64
	for i := 0; i < 128; i++ {
		buf := make([]byte, 8)
		if err := g.Read(counters+uint64(i*4096), buf); err != nil {
			t.Fatal(err)
		}
		total += binary.LittleEndian.Uint64(buf)
	}
	if want := uint64(workers * iters); total != want {
		t.Fatalf("lost updates: counted %d, want %d", total, want)
	}
}

// TestGlobalConcurrentCrossPage checks multi-page ranges (which take several
// stripe locks in ascending order) stay consistent under concurrency.
func TestGlobalConcurrentCrossPage(t *testing.T) {
	g := NewGlobal()
	const span = 256 // bytes written across a page boundary
	base := g.Alloc(pageSize*4, "xpage")
	// The range [edge, edge+span) straddles the first page boundary.
	edge := base + pageSize - span/2

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pat := make([]byte, span)
			for i := range pat {
				pat[i] = byte(w)
			}
			buf := make([]byte, span)
			for i := 0; i < 500; i++ {
				if err := g.Write(edge, pat); err != nil {
					t.Error(err)
					return
				}
				if err := g.Read(edge, buf); err != nil {
					t.Error(err)
					return
				}
				// Every byte of a read snapshot must come from a single
				// writer: cross-page writes must not tear.
				for j := 1; j < span; j++ {
					if buf[j] != buf[0] {
						t.Errorf("torn cross-page write: byte %d = %d, byte 0 = %d", j, buf[j], buf[0])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
