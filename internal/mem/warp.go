package mem

// WarpOp is a reusable batch descriptor for one warp-level global-memory
// access: up to 32 lane accesses of a common width, applied in ascending
// lane order. The predecoded engine keeps one per SM shard so issuing a
// warp access performs no allocation and — unlike 32 calls through
// Read/Write — takes the metadata lock once and the covering stripe locks
// once instead of three lock operations per lane.
type WarpOp struct {
	N     int // number of staged lanes
	Store bool
	Width int // bytes per lane access (1..16)
	Addrs [32]uint64
	Data  [32][16]byte // staged store data / returned load data, Width bytes per lane
}

// AccessWarp validates and applies the staged lane accesses in ascending
// order with per-lane fault semantics identical to issuing Read/Write
// once per lane: validation checks lanes in order and stops at the first
// fault, the data of every earlier lane is still transferred, and the
// returned fault carries the same space/address/why/write fields. It
// returns the number of lanes applied; when n < op.N, err is lane n's
// fault.
//
// The covering stripe locks are held across the whole batch, so the warp
// access is atomic with respect to other SMs — strictly stronger than the
// lane-at-a-time path, and indistinguishable from it in any deterministic
// schedule since per-lane interleavings with another SM were never
// ordered to begin with.
func (g *Global) AccessWarp(op *WarpOp) (int, error) {
	w := uint64(op.Width)

	// One metadata read lock validates every lane. The covering-span check
	// comes first: when a single allocation (or the mapped window) covers
	// [lo, hi+width) — the overwhelmingly common case — one lookup clears
	// all 32 lanes. A span failure does not imply a lane fault (the lanes
	// may straddle two adjacent allocations), so it falls back to the
	// per-lane walk, which also pins the exact faulting lane.
	lo, hi := op.Addrs[0], op.Addrs[0]
	for i := 1; i < op.N; i++ {
		if a := op.Addrs[i]; a < lo {
			lo = a
		} else if a > hi {
			hi = a
		}
	}
	n := op.N
	var ferr error
	g.mu.RLock()
	if g.findAlloc(lo, hi-lo+w) != nil {
		for i := 0; i < op.N; i++ {
			if err := g.findAlloc(op.Addrs[i], w); err != nil {
				f := err.(*Fault)
				f.Write = op.Store
				n, ferr = i, f
				break
			}
		}
	}
	g.mu.RUnlock()
	if n == 0 {
		return 0, ferr
	}

	// One ascending-order acquisition of the union of covering stripes.
	if n < op.N {
		lo, hi = op.Addrs[0], op.Addrs[0]
		for i := 1; i < n; i++ {
			if a := op.Addrs[i]; a < lo {
				lo = a
			} else if a > hi {
				hi = a
			}
		}
	}
	unlock := g.lockRange(lo, hi-lo+w)

	// Transfer with a one-page cache: coalesced warps touch one or two
	// pages, so most lanes skip the page-table lock entirely.
	var cachedPN uint64 = ^uint64(0)
	var cached *[pageSize]byte
	for i := 0; i < n; i++ {
		a := op.Addrs[i]
		buf := op.Data[i][:op.Width]
		pn := a >> pageShift
		off := a & (pageSize - 1)
		if off+w > pageSize {
			// Page-straddling access: take the general path.
			if op.Store {
				g.writeData(a, buf)
			} else {
				g.readData(a, buf)
			}
			continue
		}
		if pn != cachedPN {
			cachedPN = pn
			if op.Store {
				cached = g.pageRW(pn)
			} else {
				cached = g.pageRO(pn)
			}
		}
		switch {
		case op.Store:
			copy(cached[off:], buf)
		case cached == nil:
			// Read of a never-written page: zeros, like readData.
			clear(buf)
		default:
			copy(buf, cached[off:off+w])
		}
	}
	unlock()
	return n, ferr
}
