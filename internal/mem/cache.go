package mem

import "fmt"

// Cache is a set-associative, LRU, write-through/no-write-allocate cache
// model used for the L1 (per SM) and L2 (shared) levels. Only tags are
// modeled; data always comes from the backing store, so the cache purely
// produces hit/miss statistics and timing inputs.
type Cache struct {
	name      string
	lineBytes uint64
	sets      int
	ways      int
	tags      [][]uint64 // [set][way] line address; ^uint64(0) = invalid
	lru       [][]uint8  // [set][way] age; 0 = MRU

	Stats CacheStats
}

// CacheStats accumulates cache event counts.
type CacheStats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Add accumulates o into s (merging per-SM slice statistics into a
// device-wide total; sums are order-independent, so the merge is
// deterministic no matter how SM execution interleaved).
func (s *CacheStats) Add(o CacheStats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
}

// HitRate returns hits/accesses, or 0 for an idle cache.
func (s CacheStats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// NewCache builds a cache model. sizeBytes must be divisible by
// ways*lineBytes.
func NewCache(name string, sizeBytes, lineBytes uint64, ways int) *Cache {
	if lineBytes == 0 || lineBytes&(lineBytes-1) != 0 {
		panic("mem: cache line size must be a power of two")
	}
	sets := int(sizeBytes / (uint64(ways) * lineBytes))
	if sets == 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("mem: cache %s: set count %d must be a nonzero power of two", name, sets))
	}
	c := &Cache{name: name, lineBytes: lineBytes, sets: sets, ways: ways}
	c.tags = make([][]uint64, sets)
	c.lru = make([][]uint8, sets)
	for i := range c.tags {
		c.tags[i] = make([]uint64, ways)
		c.lru[i] = make([]uint8, ways)
		for w := range c.tags[i] {
			c.tags[i][w] = ^uint64(0)
			c.lru[i][w] = uint8(w)
		}
	}
	return c
}

// Name returns the cache's configured name.
func (c *Cache) Name() string { return c.name }

// LineBytes returns the cache line size.
func (c *Cache) LineBytes() uint64 { return c.lineBytes }

func (c *Cache) setOf(addr uint64) int {
	return int((addr / c.lineBytes) % uint64(c.sets))
}

func (c *Cache) touch(set, way int) {
	age := c.lru[set][way]
	for w := 0; w < c.ways; w++ {
		if c.lru[set][w] < age {
			c.lru[set][w]++
		}
	}
	c.lru[set][way] = 0
}

// Access performs a load (store=false) or store (store=true) of the line
// containing addr and reports whether it hit. Loads allocate on miss;
// stores are write-through and do not allocate.
func (c *Cache) Access(addr uint64, store bool) bool {
	c.Stats.Accesses++
	line := addr &^ (c.lineBytes - 1)
	set := c.setOf(addr)
	for w := 0; w < c.ways; w++ {
		if c.tags[set][w] == line {
			c.Stats.Hits++
			c.touch(set, w)
			return true
		}
	}
	c.Stats.Misses++
	if store {
		return false // no write allocate
	}
	// Allocate into the LRU way.
	victim := 0
	for w := 0; w < c.ways; w++ {
		if c.lru[set][w] == uint8(c.ways-1) {
			victim = w
			break
		}
	}
	if c.tags[set][victim] != ^uint64(0) {
		c.Stats.Evictions++
	}
	c.tags[set][victim] = line
	c.touch(set, victim)
	return false
}

// Invalidate clears all tags (kernel-boundary flush) without resetting stats.
func (c *Cache) Invalidate() {
	for s := range c.tags {
		for w := range c.tags[s] {
			c.tags[s][w] = ^uint64(0)
			c.lru[s][w] = uint8(w)
		}
	}
}

// DRAM is a simple bandwidth/latency model: every L2 miss costs a fixed
// latency and occupies one transaction slot.
type DRAM struct {
	// LatencyCycles is the added latency of a DRAM access.
	LatencyCycles int
	// Transactions counts DRAM line fetches/writebacks.
	Transactions uint64
}

// Access records one DRAM transaction and returns its latency.
func (d *DRAM) Access() int {
	d.Transactions++
	return d.LatencyCycles
}

// Hierarchy ties one SM's L1 to its L2 slice and DRAM channel, producing a
// cost (in cycles) for a set of coalesced transactions. The L2 is modeled
// as banked per SM (each SM owns an address-interleaved slice of the total
// capacity), so every level of a Hierarchy is private to one SM goroutine
// and needs no locking.
type Hierarchy struct {
	L1   *Cache // may be nil (Kepler global loads often bypass L1)
	L2   *Cache
	DRAM *DRAM

	// L1Latency, L2Latency are hit latencies in cycles.
	L1Latency int
	L2Latency int
}

// AccessLines charges every line transaction through the hierarchy and
// returns the worst-case latency plus per-transaction occupancy cycles.
func (h *Hierarchy) AccessLines(lines []uint64, store bool) int {
	worst := 0
	for _, line := range lines {
		lat := 0
		hit := false
		if h.L1 != nil {
			hit = h.L1.Access(line, store)
			lat += h.L1Latency
		}
		if !hit {
			hit2 := h.L2.Access(line, store)
			lat += h.L2Latency
			if !hit2 {
				lat += h.DRAM.Access()
			}
		}
		if lat > worst {
			worst = lat
		}
	}
	// Each extra transaction occupies the LSU pipe for one cycle.
	return worst + len(lines)
}
