package mem

import "testing"

func TestCacheHitMiss(t *testing.T) {
	c := NewCache("t", 1024, 64, 2) // 8 sets, 2 ways
	if c.Access(0, false) {
		t.Error("cold access hit")
	}
	if !c.Access(0, false) {
		t.Error("warm access missed")
	}
	if !c.Access(32, false) {
		t.Error("same-line access missed")
	}
	if c.Stats.Accesses != 3 || c.Stats.Hits != 2 || c.Stats.Misses != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
	if got := c.Stats.HitRate(); got < 0.66 || got > 0.67 {
		t.Errorf("hit rate = %f", got)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache("t", 1024, 64, 2) // 8 sets; addresses 64*8 apart share a set
	setStride := uint64(64 * 8)
	a, b, d := uint64(0), setStride, 2*setStride
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is MRU, b is LRU
	c.Access(d, false) // evicts b
	if !c.Access(a, false) {
		t.Error("a evicted although MRU")
	}
	if c.Access(b, false) {
		t.Error("b still resident although LRU victim")
	}
	if c.Stats.Evictions == 0 {
		t.Error("no evictions recorded")
	}
}

func TestCacheStoreNoAllocate(t *testing.T) {
	c := NewCache("t", 1024, 64, 2)
	c.Access(0, true) // write miss: no allocate
	if c.Access(0, false) {
		t.Error("store allocated a line")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache("t", 1024, 64, 2)
	c.Access(0, false)
	c.Invalidate()
	if c.Access(0, false) {
		t.Error("line survived invalidate")
	}
}

func TestCacheRejectsBadGeometry(t *testing.T) {
	for _, fn := range []func(){
		func() { NewCache("t", 1024, 48, 2) }, // line not power of two
		func() { NewCache("t", 100, 64, 2) },  // sets not power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry accepted")
				}
			}()
			fn()
		}()
	}
}

func TestDRAM(t *testing.T) {
	d := &DRAM{LatencyCycles: 300}
	if got := d.Access(); got != 300 {
		t.Errorf("latency = %d", got)
	}
	if d.Transactions != 1 {
		t.Errorf("transactions = %d", d.Transactions)
	}
}

func TestHierarchyAccessLines(t *testing.T) {
	h := Hierarchy{
		L1:        NewCache("l1", 1024, 64, 2),
		L2:        NewCache("l2", 4096, 64, 4),
		DRAM:      &DRAM{LatencyCycles: 100},
		L1Latency: 10, L2Latency: 40,
	}
	// Cold: L1 miss, L2 miss, DRAM: 10+40+100 + 1 transaction slot.
	if got := h.AccessLines([]uint64{0}, false); got != 151 {
		t.Errorf("cold access = %d, want 151", got)
	}
	// Warm: L1 hit: 10 + 1.
	if got := h.AccessLines([]uint64{0}, false); got != 11 {
		t.Errorf("warm access = %d, want 11", got)
	}
	// No L1 (bypass): cost goes through L2.
	h2 := Hierarchy{L2: h.L2, DRAM: h.DRAM, L2Latency: 40}
	if got := h2.AccessLines([]uint64{0}, false); got != 41 {
		t.Errorf("L2 hit without L1 = %d, want 41", got)
	}
	// Empty transaction list costs nothing.
	if got := h.AccessLines(nil, false); got != 0 {
		t.Errorf("empty = %d", got)
	}
}
