package mem

import (
	"math"
	"testing"
	"testing/quick"
)

func fullMask() uint32 { return 0xffffffff }

func TestCoalesceSameLine(t *testing.T) {
	c := NewCoalescer(32)
	var a Access
	a.Active = fullMask()
	a.Width = 1
	for i := range a.Addrs {
		a.Addrs[i] = GlobalBase + uint64(i%32) // all within one 32B line
	}
	r := c.Coalesce(&a)
	if r.UniqueLines() != 1 || r.NumActive != 32 {
		t.Errorf("unique=%d active=%d, want 1/32", r.UniqueLines(), r.NumActive)
	}
}

func TestCoalesceUnitStride(t *testing.T) {
	c := NewCoalescer(32)
	var a Access
	a.Active = fullMask()
	a.Width = 4
	for i := range a.Addrs {
		a.Addrs[i] = GlobalBase + uint64(4*i)
	}
	r := c.Coalesce(&a)
	// 32 threads x 4B = 128B = four 32B lines.
	if r.UniqueLines() != 4 {
		t.Errorf("unique = %d, want 4", r.UniqueLines())
	}
}

func TestCoalesceFullyDiverged(t *testing.T) {
	c := NewCoalescer(32)
	var a Access
	a.Active = fullMask()
	a.Width = 4
	for i := range a.Addrs {
		a.Addrs[i] = GlobalBase + uint64(i)*4096
	}
	r := c.Coalesce(&a)
	if r.UniqueLines() != 32 {
		t.Errorf("unique = %d, want 32", r.UniqueLines())
	}
}

func TestCoalescePartialMask(t *testing.T) {
	c := NewCoalescer(32)
	var a Access
	a.Active = 0x5 // lanes 0 and 2
	a.Width = 4
	a.Addrs[0] = GlobalBase
	a.Addrs[2] = GlobalBase + 1024
	a.Addrs[1] = GlobalBase + 999999 // inactive, must be ignored
	r := c.Coalesce(&a)
	if r.UniqueLines() != 2 || r.NumActive != 2 {
		t.Errorf("unique=%d active=%d", r.UniqueLines(), r.NumActive)
	}
}

func TestCoalesceCrossLineAccess(t *testing.T) {
	c := NewCoalescer(32)
	var a Access
	a.Active = 1
	a.Width = 8
	a.Addrs[0] = GlobalBase + 28 // 8B access starting 4B before a line end
	r := c.Coalesce(&a)
	if r.UniqueLines() != 2 {
		t.Errorf("straddling access: unique = %d, want 2", r.UniqueLines())
	}
}

func TestCoalesceZeroWidthDefaults(t *testing.T) {
	c := NewCoalescer(32)
	var a Access
	a.Active = 1
	a.Addrs[0] = GlobalBase
	r := c.Coalesce(&a)
	if r.UniqueLines() != 1 {
		t.Errorf("unique = %d", r.UniqueLines())
	}
}

func TestCoalescerRejectsBadLineSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two line size accepted")
		}
	}()
	NewCoalescer(48)
}

// TestCoalesceQuickAgainstReference compares the coalescer with a naive
// set-based reference over random accesses.
func TestCoalesceQuickAgainstReference(t *testing.T) {
	c := NewCoalescer(32)
	f := func(offsets [32]uint16, mask uint32, wsel uint8) bool {
		width := []int{1, 2, 4, 8, 16}[int(wsel)%5]
		var a Access
		a.Active = mask
		a.Width = width
		ref := map[uint64]bool{}
		refActive := 0
		for lane := 0; lane < 32; lane++ {
			a.Addrs[lane] = GlobalBase + uint64(offsets[lane])
			if mask&(1<<lane) == 0 {
				continue
			}
			refActive++
			for b := uint64(0); b < uint64(width); b++ {
				ref[(a.Addrs[lane]+b)&^31] = true
			}
		}
		r := c.Coalesce(&a)
		return r.UniqueLines() == len(ref) && r.NumActive == refActive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDivergenceMatrixPMF(t *testing.T) {
	var m DivergenceMatrix
	// 10 accesses: 32 active, 1 unique (fully coalesced).
	for i := 0; i < 10; i++ {
		m.Record(Result{Lines: []uint64{1}, NumActive: 32})
	}
	// 5 accesses: 32 active, 32 unique (fully diverged).
	for i := 0; i < 5; i++ {
		lines := make([]uint64, 32)
		for j := range lines {
			lines[j] = uint64(j)
		}
		m.Record(Result{Lines: lines, NumActive: 32})
	}
	pmf := m.UniqueLinePMF()
	// Thread-weighted: 10*32 threads at N=1, 5*32 threads at N=32.
	if math.Abs(pmf[0]-10.0/15.0) > 1e-9 {
		t.Errorf("pmf[0] = %f, want %f", pmf[0], 10.0/15.0)
	}
	if math.Abs(pmf[31]-5.0/15.0) > 1e-9 {
		t.Errorf("pmf[31] = %f", pmf[31])
	}
	if m.TotalAccesses() != 15 {
		t.Errorf("total = %d", m.TotalAccesses())
	}
}

func TestDivergenceMatrixIgnoresEmpty(t *testing.T) {
	var m DivergenceMatrix
	m.Record(Result{})
	if m.TotalAccesses() != 0 {
		t.Error("empty access recorded")
	}
}

func TestDivergenceMatrixMerge(t *testing.T) {
	var a, b DivergenceMatrix
	a.Counts[3][2] = 7
	b.Counts[3][2] = 5
	b.Counts[0][0] = 1
	a.Merge(&b)
	if a.Counts[3][2] != 12 || a.Counts[0][0] != 1 {
		t.Error("merge wrong")
	}
}
