package mem

import "testing"

func TestDecodeSpaces(t *testing.T) {
	cases := []struct {
		addr  uint64
		space Space
		off   uint64
	}{
		{0, SpaceInvalid, 0},
		{LocalBase, SpaceLocal, 0},
		{LocalBase + 100, SpaceLocal, 100},
		{LocalBase + WindowSize - 1, SpaceLocal, WindowSize - 1},
		{SharedBase, SpaceShared, 0},
		{SharedBase + 64, SpaceShared, 64},
		{SharedBase + WindowSize, SpaceInvalid, 0},
		{GlobalBase, SpaceGlobal, GlobalBase},
		{GlobalBase + 1000, SpaceGlobal, GlobalBase + 1000},
	}
	for _, c := range cases {
		sp, off := Decode(c.addr)
		if sp != c.space || off != c.off {
			t.Errorf("Decode(%#x) = %v,%#x; want %v,%#x", c.addr, sp, off, c.space, c.off)
		}
	}
}

func TestSpacePredicates(t *testing.T) {
	if !IsGlobal(GlobalBase) || IsGlobal(GlobalBase-1) {
		t.Error("IsGlobal boundary wrong")
	}
	if !IsLocal(LocalBase) || IsLocal(LocalBase+WindowSize) {
		t.Error("IsLocal boundary wrong")
	}
	if !IsShared(SharedBase) || IsShared(SharedBase-1) {
		t.Error("IsShared boundary wrong")
	}
}

func TestGlobalAllocAlignment(t *testing.T) {
	g := NewGlobal()
	a := g.Alloc(10, "a")
	b := g.Alloc(1, "b")
	if a%256 != 0 || b%256 != 0 {
		t.Errorf("allocations misaligned: %#x %#x", a, b)
	}
	if b <= a {
		t.Error("allocations overlap")
	}
	if g.Footprint() != 11 {
		t.Errorf("footprint = %d", g.Footprint())
	}
}

func TestGlobalReadWriteRoundtrip(t *testing.T) {
	g := NewGlobal()
	base := g.Alloc(1<<17+64, "big") // spans multiple 64K pages
	data := make([]byte, 1<<17)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := g.Write(base+32, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := g.Read(base+32, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestGlobalStrictFaults(t *testing.T) {
	g := NewGlobal()
	base := g.Alloc(64, "x")
	if err := g.Write32(base+60, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Write32(base+64, 1); err == nil {
		t.Error("write past allocation end accepted")
	}
	if _, err := g.Read32(base - 4); err == nil {
		t.Error("read before allocation accepted")
	}
	if _, err := g.Read32(GlobalBase - 100); err == nil {
		t.Error("read below heap accepted")
	}
	var f *Fault
	err := g.Write32(base+1000, 1)
	if ferr, ok := err.(*Fault); !ok {
		t.Errorf("error type %T, want *Fault", err)
	} else {
		f = ferr
	}
	if f != nil && (!f.Write || f.Space != SpaceGlobal) {
		t.Errorf("fault fields wrong: %+v", f)
	}
}

func TestGlobalLenientWindow(t *testing.T) {
	g := NewGlobal()
	base := g.Alloc(64, "x")
	g.SetStrictBounds(false)
	// Between allocations but inside the heap window: allowed.
	if err := g.Write32(base+4096, 7); err != nil {
		t.Errorf("lenient in-window write rejected: %v", err)
	}
	if v, err := g.Read32(base + 4096); err != nil || v != 7 {
		t.Errorf("lenient readback = %v, %v", v, err)
	}
	// Reads of never-written pages return zero.
	if v, err := g.Read32(base + (1 << 20)); err != nil || v != 0 {
		t.Errorf("untouched page read = %v, %v", v, err)
	}
	// Outside the 4GiB window: fault.
	if err := g.Write32(GlobalBase+(5<<30), 1); err == nil {
		t.Error("write outside window accepted")
	}
	if _, err := g.Read32(GlobalBase - 8); err == nil {
		t.Error("read below base accepted in lenient mode")
	}
}

func TestGlobalAtomics(t *testing.T) {
	g := NewGlobal()
	base := g.Alloc(16, "c")
	old, err := g.Atomic32(base, func(o uint32) uint32 { return o + 5 })
	if err != nil || old != 0 {
		t.Fatalf("atomic32: %v %v", old, err)
	}
	if v, _ := g.Read32(base); v != 5 {
		t.Errorf("after add, value = %d", v)
	}
	old64, err := g.Atomic64(base+8, func(o uint64) uint64 { return o | 0xff00000000 })
	if err != nil || old64 != 0 {
		t.Fatalf("atomic64: %v %v", old64, err)
	}
	if v, _ := g.Read64(base + 8); v != 0xff00000000 {
		t.Errorf("after or, value = %#x", v)
	}
}

func TestGlobal64Roundtrip(t *testing.T) {
	g := NewGlobal()
	base := g.Alloc(8, "v")
	if err := g.Write64(base, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	if v, _ := g.Read64(base); v != 0x1122334455667788 {
		t.Errorf("got %#x", v)
	}
	if lo, _ := g.Read32(base); lo != 0x55667788 {
		t.Errorf("little-endian low word = %#x", lo)
	}
}

func TestSharedBounds(t *testing.T) {
	s := NewShared(128)
	if err := s.Write32(124, 9); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Read32(124); v != 9 {
		t.Error("readback failed")
	}
	if err := s.Write32(126, 1); err == nil {
		t.Error("straddling write accepted")
	}
	if _, err := s.Read32(128); err == nil {
		t.Error("out-of-bounds read accepted")
	}
	if s.Size() != 128 {
		t.Errorf("size = %d", s.Size())
	}
}

func TestLocalBounds(t *testing.T) {
	l := NewLocal(256)
	if err := l.Write32(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Write32(256, 1); err == nil {
		t.Error("stack overflow write accepted")
	}
	buf := make([]byte, 32)
	if err := l.Read(240, buf); err == nil {
		t.Error("overlong read accepted")
	}
}
