// Package mem models the GPU memory system: global device memory with an
// allocator and access validation, per-CTA shared memory, per-thread local
// (stack) memory, a generic address space that windows all three, a warp
// coalescer, set-associative caches, and a DRAM latency/bandwidth model.
//
// The generic address layout mirrors NVIDIA GPUs, where local and shared
// memory are reachable through fixed windows of the generic space so that
// a single LD/ST opcode can address any space:
//
//	[LocalBase,  LocalBase+WindowSize)   per-thread local window
//	[SharedBase, SharedBase+WindowSize)  per-CTA shared window
//	[GlobalBase, ...)                    global device memory
//
// Addresses below LocalBase and between the windows are unmapped; accessing
// them raises a memory fault, which the fault-injection study (Case Study
// IV) relies on to detect crashes from corrupted pointers.
package mem

import "fmt"

// Space identifies a memory space.
type Space uint8

// Memory spaces.
const (
	SpaceInvalid Space = iota
	SpaceGlobal
	SpaceShared
	SpaceLocal
	SpaceConst
)

var spaceNames = [...]string{"invalid", "global", "shared", "local", "const"}

func (s Space) String() string {
	if int(s) < len(spaceNames) {
		return spaceNames[s]
	}
	return fmt.Sprintf("space(%d)", uint8(s))
}

// Generic address window layout.
const (
	// LocalBase is the generic-space base of the per-thread local window.
	LocalBase uint64 = 0x0100_0000
	// SharedBase is the generic-space base of the per-CTA shared window.
	SharedBase uint64 = 0x0200_0000
	// WindowSize is the size of the local and shared windows.
	WindowSize uint64 = 0x0100_0000
	// GlobalBase is the lowest global device memory address the allocator
	// hands out.
	GlobalBase uint64 = 0x1_0000_0000
)

// Decode classifies a generic address and returns the space-relative offset.
func Decode(addr uint64) (Space, uint64) {
	switch {
	case addr >= GlobalBase:
		return SpaceGlobal, addr
	case addr >= SharedBase && addr < SharedBase+WindowSize:
		return SpaceShared, addr - SharedBase
	case addr >= LocalBase && addr < LocalBase+WindowSize:
		return SpaceLocal, addr - LocalBase
	default:
		return SpaceInvalid, 0
	}
}

// IsGlobal reports whether a generic address refers to global memory
// (the handler-visible analog of CUDA's __isGlobal).
func IsGlobal(addr uint64) bool { return addr >= GlobalBase }

// IsShared reports whether a generic address refers to shared memory.
func IsShared(addr uint64) bool {
	return addr >= SharedBase && addr < SharedBase+WindowSize
}

// IsLocal reports whether a generic address refers to local memory.
func IsLocal(addr uint64) bool {
	return addr >= LocalBase && addr < LocalBase+WindowSize
}

// Fault describes an invalid memory access. It is the simulator's analog
// of an Xid/illegal-address error that kills a kernel on real hardware.
type Fault struct {
	Space Space
	Addr  uint64
	Write bool
	Why   string
}

func (f *Fault) Error() string {
	kind := "load"
	if f.Write {
		kind = "store"
	}
	return fmt.Sprintf("memory fault: illegal %s %s at 0x%x: %s", f.Space, kind, f.Addr, f.Why)
}
