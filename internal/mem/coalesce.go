package mem

// Coalescer models the warp-level memory access unit: for each warp memory
// instruction it merges the per-lane addresses into unique cache-line
// transactions. The number of unique lines touched per warp instruction is
// the paper's memory address divergence metric (Case Study II).
type Coalescer struct {
	// LineBytes is the coalescing granularity. The paper's study uses 32B
	// sectors; the ablation benches also run 128B.
	LineBytes uint64
}

// NewCoalescer returns a coalescer with the given line size (power of two).
func NewCoalescer(lineBytes uint64) *Coalescer {
	if lineBytes == 0 || lineBytes&(lineBytes-1) != 0 {
		panic("mem: coalescer line size must be a power of two")
	}
	return &Coalescer{LineBytes: lineBytes}
}

// Access describes one warp memory instruction presented to the coalescer.
type Access struct {
	// Addrs holds the per-lane byte addresses; only lanes with the
	// corresponding Active bit set participate.
	Addrs [32]uint64
	// Active is the warp's active mask for the access.
	Active uint32
	// Width is the per-thread access width in bytes.
	Width int
	// Store marks the access as a write.
	Store bool
}

// Result describes the transactions an access generated.
type Result struct {
	// Lines lists the unique line base addresses, in first-touch order.
	Lines []uint64
	// NumActive is the number of participating lanes.
	NumActive int
}

// UniqueLines returns the number of memory transactions (unique lines).
func (r Result) UniqueLines() int { return len(r.Lines) }

// Coalesce merges an access into unique line transactions. Accesses wider
// than the remaining bytes in a line span two lines, as on hardware.
func (c *Coalescer) Coalesce(a *Access) Result {
	var res Result
	c.CoalesceInto(a, &res)
	return res
}

// CoalesceInto is Coalesce writing into a caller-owned Result, resetting
// and reusing res.Lines so a per-SM Result makes the steady state
// allocation-free. Deduplication is a linear scan of the lines emitted so
// far: a warp touches a handful of unique lines, where scanning the slice
// beats a map — and even a fully divergent warp stays a few hundred
// word compares.
func (c *Coalescer) CoalesceInto(a *Access, res *Result) {
	res.Lines = res.Lines[:0]
	res.NumActive = 0
	mask := c.LineBytes - 1
	for lane := 0; lane < 32; lane++ {
		if a.Active&(1<<lane) == 0 {
			continue
		}
		res.NumActive++
		first := a.Addrs[lane] &^ mask
		w := uint64(a.Width)
		if w == 0 {
			w = 4
		}
		last := (a.Addrs[lane] + w - 1) &^ mask
	lines:
		for line := first; ; line += c.LineBytes {
			for _, l := range res.Lines {
				if l == line {
					if line == last {
						break lines
					}
					continue lines
				}
			}
			res.Lines = append(res.Lines, line)
			if line == last {
				break
			}
		}
	}
}

// DivergenceMatrix accumulates the paper's Figure 8 statistic: a 32x32
// lower-triangular matrix of counters where rows are the number of active
// threads in the warp and columns the number of unique lines requested.
type DivergenceMatrix struct {
	Counts [32][32]uint64
}

// Record tallies one coalesced access.
func (m *DivergenceMatrix) Record(r Result) {
	if r.NumActive == 0 {
		return
	}
	u := r.UniqueLines()
	if u == 0 {
		return
	}
	if u > 32 {
		u = 32 // multi-line wide accesses can exceed 32; clamp for the plot
	}
	m.Counts[r.NumActive-1][u-1]++
}

// Merge adds o into m.
func (m *DivergenceMatrix) Merge(o *DivergenceMatrix) {
	for i := range m.Counts {
		for j := range m.Counts[i] {
			m.Counts[i][j] += o.Counts[i][j]
		}
	}
}

// TotalAccesses returns the number of recorded warp accesses.
func (m *DivergenceMatrix) TotalAccesses() uint64 {
	var n uint64
	for i := range m.Counts {
		for j := range m.Counts[i] {
			n += m.Counts[i][j]
		}
	}
	return n
}

// UniqueLinePMF computes the paper's Figure 7 distribution: the fraction of
// *thread-level* accesses issued from warp instructions that requested N
// unique lines, for N in 1..32 (index 0 holds N=1).
func (m *DivergenceMatrix) UniqueLinePMF() [32]float64 {
	var pmf [32]float64
	var total float64
	for act := 0; act < 32; act++ {
		for uniq := 0; uniq < 32; uniq++ {
			threads := float64(act+1) * float64(m.Counts[act][uniq])
			pmf[uniq] += threads
			total += threads
		}
	}
	if total > 0 {
		for i := range pmf {
			pmf[i] /= total
		}
	}
	return pmf
}
