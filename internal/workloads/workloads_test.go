package workloads_test

import (
	"testing"

	"sassi/internal/cuda"
	"sassi/internal/ptxas"
	"sassi/internal/sim"
	"sassi/internal/workloads"
)

// TestAllWorkloadsVerify compiles and runs every registered workload on its
// default dataset and checks the GPU results against the CPU references.
func TestAllWorkloadsVerify(t *testing.T) {
	for _, spec := range workloads.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			prog, err := spec.Compile(ptxas.Options{})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			ctx := cuda.NewContext(sim.MiniGPU())
			res, err := spec.Run(ctx, prog, spec.DefaultDataset())
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.VerifyErr != nil {
				t.Fatalf("verification: %v", res.VerifyErr)
			}
			if res.Stdout == "" {
				t.Error("empty stdout summary")
			}
			if len(res.Output) == 0 {
				t.Error("empty output buffer")
			}
			if ctx.Launches() == 0 {
				t.Error("no kernels launched")
			}
		})
	}
}

// TestAllDatasetsVerify runs every dataset of every workload (more work;
// kept separate so -short can skip it).
func TestAllDatasetsVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, spec := range workloads.All() {
		spec := spec
		for _, ds := range spec.Datasets {
			if ds == spec.DefaultDataset() {
				continue // covered above
			}
			ds := ds
			t.Run(spec.Name+"/"+ds, func(t *testing.T) {
				prog, err := spec.Compile(ptxas.Options{})
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				ctx := cuda.NewContext(sim.MiniGPU())
				res, err := spec.Run(ctx, prog, ds)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if res.VerifyErr != nil {
					t.Fatalf("verification: %v", res.VerifyErr)
				}
			})
		}
	}
}
