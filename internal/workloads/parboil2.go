package workloads

import (
	"fmt"

	"sassi/internal/cuda"
	"sassi/internal/ptx"
	"sassi/internal/sass"
	"sassi/internal/sim"
)

func init() {
	register(sadSpec())
	register(lbmSpec())
	register(cutcpSpec())
	register(griddingSpec())
}

// sadSpec is Parboil sad: sums of absolute differences between a 4x4 block
// of the current frame and candidate positions in the reference frame —
// uniform loops, abs via signed max.
func sadSpec() *Spec {
	return &Spec{
		Name:     "parboil.sad",
		Datasets: []string{"small"},
		Build: func() (*ptx.Module, error) {
			b := ptx.NewKernel("sad4x4")
			cur := b.ParamU64("cur")
			refF := b.ParamU64("ref")
			out := b.ParamU64("out")
			w := b.ParamU32("w")
			_ = b.ParamU32("nCand") // fixed at 16; kept in the signature for shape
			// One thread per (block, candidate): blockIdx = tid / nCand.
			t := b.GlobalTidX()
			// nCand is fixed at 16 and blocks-per-row at 16 (w=64), so the
			// index decomposition is all shifts and masks.
			blk := b.ShrI(t, 4)
			cand := b.AndI(t, 15)
			bx := b.AndI(blk, 15)
			by := b.ShrI(blk, 4)
			sum := b.Var(b.ImmU32(0))
			dy := b.Var(b.ImmU32(0))
			b.While(func() ptx.Value { return b.SetpI(sass.CmpLT, dy, 4) }, func() {
				dx := b.Var(b.ImmU32(0))
				b.While(func() ptx.Value { return b.SetpI(sass.CmpLT, dx, 4) }, func() {
					y := b.Add(b.ShlI(by, 2), dy)
					x := b.Add(b.ShlI(bx, 2), dx)
					cIdx := b.Mad(y, w, x)
					rIdx := b.Add(cIdx, cand) // candidate: shifted right
					cv := b.AsS32(b.LdGlobalU32(b.Index(cur, cIdx, 2), 0))
					rv := b.AsS32(b.LdGlobalU32(b.Index(refF, rIdx, 2), 0))
					diff := b.Sub(cv, rv)
					neg := b.Sub(b.ImmS32(0), diff)
					ad := b.Max(diff, neg)
					b.Assign(sum, b.Add(sum, b.AsU32(ad)))
					b.Assign(dx, b.AddI(dx, 1))
				})
				b.Assign(dy, b.AddI(dy, 1))
			})
			b.StGlobalU32(b.Index(out, t, 2), 0, sum)
			f, err := b.Done()
			if err != nil {
				return nil, err
			}
			m := ptx.NewModule()
			m.Add(f)
			return m, nil
		},
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			const w, h, nCand = 64, 16, 16
			blocks := (w / 4) * (h / 4)
			n := blocks * nCand
			r := newRNG(241)
			cur := make([]uint32, w*(h+4))
			ref := make([]uint32, w*(h+4)+nCand)
			for i := range cur {
				cur[i] = uint32(r.intn(256))
			}
			for i := range ref {
				ref[i] = uint32(r.intn(256))
			}
			dCur := ctx.AllocU32("cur", cur)
			dRef := ctx.AllocU32("ref", ref)
			dOut := ctx.Malloc(uint64(4*n), "out")
			if _, err := ctx.LaunchKernel(prog, "sad4x4", sim.LaunchParams{
				Grid: sim.D1((n + 127) / 128), Block: sim.D1(128),
				Args: []uint64{uint64(dCur), uint64(dRef), uint64(dOut),
					uint64(w), uint64(nCand)},
			}); err != nil {
				return nil, err
			}
			got, err := ctx.ReadU32(dOut, n)
			if err != nil {
				return nil, err
			}
			want := make([]uint32, n)
			for t := 0; t < n; t++ {
				blk := t / nCand
				cand := t % nCand
				bx := blk % 16
				by := blk / 16
				var sum uint32
				for dy := 0; dy < 4; dy++ {
					for dx := 0; dx < 4; dx++ {
						y := by*4 + dy
						x := bx*4 + dx
						c := int32(cur[y*w+x])
						rv := int32(ref[y*w+x+cand])
						d := c - rv
						if d < 0 {
							d = -d
						}
						sum += uint32(d)
					}
				}
				want[t] = sum
			}
			res := &Result{Output: u32Bytes(got)}
			res.VerifyErr = compareU32(got, want, "sad")
			res.Stdout = fmt.Sprintf("sad blocks=%d checksum=%08x\n", blocks, checksum(res.Output))
			return res, nil
		},
	}
}

// lbmSpec is Parboil lbm reduced to a D2Q5 lattice-Boltzmann stream-collide
// step: heavy, perfectly regular global memory traffic.
func lbmSpec() *Spec {
	return &Spec{
		Name:      "parboil.lbm",
		OutputTol: 1e-3,
		Datasets:  []string{"small"},
		Build: func() (*ptx.Module, error) {
			b := ptx.NewKernel("lbm_step")
			src := b.ParamU64("src") // 5 distributions, planar layout f[d][y][x]
			dst := b.ParamU64("dst")
			w := b.ParamU32("w")
			h := b.ParamU32("h")
			omega := b.ParamF32("omega")
			x := b.GlobalTidX()
			y := b.CtaY()
			inside := b.PAnd(
				b.PAnd(b.SetpI(sass.CmpGT, x, 0), b.Setp(sass.CmpLT, b.AddI(x, 1), w)),
				b.PAnd(b.SetpI(sass.CmpGT, y, 0), b.Setp(sass.CmpLT, b.AddI(y, 1), h)))
			b.If(inside, func() {
				plane := b.Mul(w, h)
				idx := b.Mad(y, w, x)
				// Pull streaming: gather the 5 incoming distributions.
				f0 := b.LdGlobalF32(b.Index(src, idx, 2), 0)
				fE := b.LdGlobalF32(b.Index(src, b.Add(plane, b.SubI(idx, 1)), 2), 0)
				fW := b.LdGlobalF32(b.Index(src, b.Add(b.Mul(plane, b.ImmU32(2)), b.AddI(idx, 1)), 2), 0)
				fN := b.LdGlobalF32(b.Index(src, b.Add(b.Mul(plane, b.ImmU32(3)), b.Add(idx, w)), 2), 0)
				fS := b.LdGlobalF32(b.Index(src, b.Add(b.Mul(plane, b.ImmU32(4)), b.Sub(idx, w)), 2), 0)
				rho := b.Add(b.Add(f0, b.Add(fE, fW)), b.Add(fN, fS))
				feq := b.Mul(rho, b.ImmF32(0.2))
				relax := func(f ptx.Value) ptx.Value {
					return b.Fma(b.Sub(feq, f), omega, f)
				}
				b.StGlobalF32(b.Index(dst, idx, 2), 0, relax(f0))
				b.StGlobalF32(b.Index(dst, b.Add(plane, idx), 2), 0, relax(fE))
				b.StGlobalF32(b.Index(dst, b.Add(b.Mul(plane, b.ImmU32(2)), idx), 2), 0, relax(fW))
				b.StGlobalF32(b.Index(dst, b.Add(b.Mul(plane, b.ImmU32(3)), idx), 2), 0, relax(fN))
				b.StGlobalF32(b.Index(dst, b.Add(b.Mul(plane, b.ImmU32(4)), idx), 2), 0, relax(fS))
			})
			f, err := b.Done()
			if err != nil {
				return nil, err
			}
			m := ptx.NewModule()
			m.Add(f)
			return m, nil
		},
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			const w, h = 64, 32
			omega := float32(0.6)
			r := newRNG(251)
			src := r.f32s(5*w*h, 0.1, 1)
			dSrc := ctx.AllocF32("src", src)
			dDst := ctx.AllocF32("dst", make([]float32, 5*w*h))
			if _, err := ctx.LaunchKernel(prog, "lbm_step", sim.LaunchParams{
				Grid: sim.Dim3{X: (w + 63) / 64, Y: h, Z: 1}, Block: sim.D1(64),
				Args: []uint64{uint64(dSrc), uint64(dDst),
					uint64(w), uint64(h), uint64(f32bitsOf(omega))},
			}); err != nil {
				return nil, err
			}
			got, err := ctx.ReadF32(dDst, 5*w*h)
			if err != nil {
				return nil, err
			}
			want := make([]float32, 5*w*h)
			plane := w * h
			for y := 1; y < h-1; y++ {
				for x := 1; x < w-1; x++ {
					idx := y*w + x
					f0 := src[idx]
					fE := src[plane+idx-1]
					fW := src[2*plane+idx+1]
					fN := src[3*plane+idx+w]
					fS := src[4*plane+idx-w]
					rho := (f0 + (fE + fW)) + (fN + fS)
					feq := rho * 0.2
					relax := func(f float32) float32 { return (feq-f)*omega + f }
					want[idx] = relax(f0)
					want[plane+idx] = relax(fE)
					want[2*plane+idx] = relax(fW)
					want[3*plane+idx] = relax(fN)
					want[4*plane+idx] = relax(fS)
				}
			}
			res := &Result{Output: f32Bytes(got)}
			res.VerifyErr = compareF32(got, want, 1e-4, "lbm")
			res.Stdout = fmt.Sprintf("lbm %dx%d %s\n", w, h, f32Summary(res.Output))
			return res, nil
		},
	}
}

// cutcpSpec is Parboil cutcp: cutoff Coulomb potential — each grid point
// accumulates charge/distance over atoms within a cutoff radius; the
// cutoff test is a divergent branch in an otherwise uniform loop.
func cutcpSpec() *Spec {
	return &Spec{
		Name:      "parboil.cutcp",
		OutputTol: 2e-2,
		Datasets:  []string{"small"},
		Build: func() (*ptx.Module, error) {
			b := ptx.NewKernel("cutcp")
			atoms := b.ParamU64("atoms") // x,y,q triples
			grid := b.ParamU64("grid")
			w := b.ParamU32("w")
			nAtoms := b.ParamU32("nAtoms")
			cut2 := b.ParamF32("cut2")
			x := b.GlobalTidX()
			y := b.CtaY()
			b.If(b.Setp(sass.CmpLT, x, w), func() {
				gx := b.CvtF32(b.AsS32(x))
				gy := b.CvtF32(b.AsS32(y))
				pot := b.Var(b.ImmF32(0))
				a := b.Var(b.ImmU32(0))
				b.While(func() ptx.Value { return b.Setp(sass.CmpLT, a, nAtoms) }, func() {
					base := b.Index(atoms, b.Mul(a, b.ImmU32(3)), 2)
					ax := b.LdGlobalF32(base, 0)
					ay := b.LdGlobalF32(base, 4)
					q := b.LdGlobalF32(base, 8)
					dx := b.Sub(gx, ax)
					dy := b.Sub(gy, ay)
					r2 := b.Fma(dx, dx, b.Mul(dy, dy))
					b.If(b.Setp(sass.CmpLT, r2, cut2), func() {
						b.Assign(pot, b.Add(pot, b.Mul(q, b.Rsq(b.Add(r2, b.ImmF32(0.01))))))
					})
					b.Assign(a, b.AddI(a, 1))
				})
				b.StGlobalF32(b.Index(grid, b.Mad(y, w, x), 2), 0, pot)
			})
			f, err := b.Done()
			if err != nil {
				return nil, err
			}
			m := ptx.NewModule()
			m.Add(f)
			return m, nil
		},
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			const w, h, nAtoms = 64, 16, 64
			cut2 := float32(64)
			r := newRNG(261)
			atoms := make([]float32, 3*nAtoms)
			for i := 0; i < nAtoms; i++ {
				atoms[3*i] = r.f32() * w
				atoms[3*i+1] = r.f32() * h
				atoms[3*i+2] = r.f32()*2 - 1
			}
			dAtoms := ctx.AllocF32("atoms", atoms)
			dGrid := ctx.Malloc(4*w*h, "grid")
			if _, err := ctx.LaunchKernel(prog, "cutcp", sim.LaunchParams{
				Grid: sim.Dim3{X: (w + 63) / 64, Y: h, Z: 1}, Block: sim.D1(64),
				Args: []uint64{uint64(dAtoms), uint64(dGrid),
					uint64(w), uint64(nAtoms), uint64(f32bitsOf(cut2))},
			}); err != nil {
				return nil, err
			}
			got, err := ctx.ReadF32(dGrid, w*h)
			if err != nil {
				return nil, err
			}
			want := make([]float32, w*h)
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					var pot float32
					for i := 0; i < nAtoms; i++ {
						dx := float32(x) - atoms[3*i]
						dy := float32(y) - atoms[3*i+1]
						r2 := dx*dx + dy*dy
						if r2 < cut2 {
							pot += atoms[3*i+2] * invSqrt32(r2+0.01)
						}
					}
					want[y*w+x] = pot
				}
			}
			res := &Result{Output: f32Bytes(got)}
			res.VerifyErr = compareF32(got, want, 2e-2, "cutcp")
			res.Stdout = fmt.Sprintf("cutcp %dx%d atoms=%d %s\n", w, h, nAtoms, f32Summary(res.Output))
			return res, nil
		},
	}
}

// griddingSpec approximates Parboil mri-gridding: scatter irregular sample
// points onto a regular grid with atomics — the address-divergence heavy
// pattern of Figure 7's mri-gridding bar.
func griddingSpec() *Spec {
	return &Spec{
		Name:     "parboil.mri-gridding",
		Datasets: []string{"small"},
		Build: func() (*ptx.Module, error) {
			b := ptx.NewKernel("gridding")
			sx := b.ParamU64("sx")
			sy := b.ParamU64("sy")
			grid := b.ParamU64("grid") // fixed-point accumulation (x1024)
			w := b.ParamU32("w")
			h := b.ParamU32("h")
			n := b.ParamU32("n")
			i := b.GlobalTidX()
			b.If(b.Setp(sass.CmpLT, i, n), func() {
				x := b.LdGlobalF32(b.Index(sx, i, 2), 0)
				y := b.LdGlobalF32(b.Index(sy, i, 2), 0)
				// Nearest-cell scatter into the 3x3 neighborhood.
				cx := b.CvtS32(x)
				cy := b.CvtS32(y)
				dy := b.Var(b.ImmS32(-1))
				b.While(func() ptx.Value { return b.SetpI(sass.CmpLE, dy, 1) }, func() {
					dx := b.Var(b.ImmS32(-1))
					b.While(func() ptx.Value { return b.SetpI(sass.CmpLE, dx, 1) }, func() {
						px := b.Add(cx, dx)
						py := b.Add(cy, dy)
						ok := b.PAnd(
							b.PAnd(b.SetpI(sass.CmpGE, px, 0), b.Setp(sass.CmpLT, px, b.AsS32(w))),
							b.PAnd(b.SetpI(sass.CmpGE, py, 0), b.Setp(sass.CmpLT, py, b.AsS32(h))))
						b.If(ok, func() {
							idx := b.Mad(b.AsU32(py), w, b.AsU32(px))
							b.AtomAddGlobal(b.Index(grid, idx, 2), 0, b.ImmU32(1))
						})
						b.Assign(dx, b.AddI(dx, 1))
					})
					b.Assign(dy, b.AddI(dy, 1))
				})
			})
			f, err := b.Done()
			if err != nil {
				return nil, err
			}
			m := ptx.NewModule()
			m.Add(f)
			return m, nil
		},
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			const w, h, n = 64, 64, 2048
			r := newRNG(271)
			sx := make([]float32, n)
			sy := make([]float32, n)
			for i := 0; i < n; i++ {
				// Radial sample distribution (dense center), like k-space
				// spiral trajectories.
				sx[i] = float32(w)/2 + (r.f32()-0.5)*(r.f32())*float32(w)
				sy[i] = float32(h)/2 + (r.f32()-0.5)*(r.f32())*float32(h)
			}
			dX := ctx.AllocF32("sx", sx)
			dY := ctx.AllocF32("sy", sy)
			dGrid := ctx.AllocU32("grid", make([]uint32, w*h))
			if _, err := ctx.LaunchKernel(prog, "gridding", sim.LaunchParams{
				Grid: sim.D1((n + 127) / 128), Block: sim.D1(128),
				Args: []uint64{uint64(dX), uint64(dY), uint64(dGrid),
					uint64(w), uint64(h), uint64(n)},
			}); err != nil {
				return nil, err
			}
			got, err := ctx.ReadU32(dGrid, w*h)
			if err != nil {
				return nil, err
			}
			want := make([]uint32, w*h)
			for i := 0; i < n; i++ {
				cx := int(int32(sx[i]))
				cy := int(int32(sy[i]))
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						px, py := cx+dx, cy+dy
						if px >= 0 && px < w && py >= 0 && py < h {
							want[py*w+px]++
						}
					}
				}
			}
			res := &Result{Output: u32Bytes(got)}
			res.VerifyErr = compareU32(got, want, "gridding")
			res.Stdout = fmt.Sprintf("mri-gridding n=%d checksum=%08x\n", n, checksum(res.Output))
			return res, nil
		},
	}
}

// invSqrt32 mirrors the kernel's Rsq in the CPU reference.
func invSqrt32(x float32) float32 {
	return float32(1 / sqrt64(float64(x)))
}
