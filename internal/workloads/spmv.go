package workloads

import (
	"fmt"

	"sassi/internal/cuda"
	"sassi/internal/ptx"
	"sassi/internal/sass"
	"sassi/internal/sim"
)

func init() {
	register(spmvSpec())
	register(minifeSpec("minife.csr", "csr"))
	register(minifeSpec("minife.ell", "ell"))
}

// buildSpMVCSR builds the row-per-thread CSR kernel: variable-length rows
// give loop divergence; x[col] gathers give address divergence.
func buildSpMVCSR(name string) (*ptx.Func, error) {
	b := ptx.NewKernel(name)
	rowPtr := b.ParamU64("rowPtr")
	cols := b.ParamU64("cols")
	vals := b.ParamU64("vals")
	x := b.ParamU64("x")
	y := b.ParamU64("y")
	nrows := b.ParamU32("nrows")
	row := b.GlobalTidX()
	b.If(b.Setp(sass.CmpLT, row, nrows), func() {
		start := b.LdGlobalU32(b.Index(rowPtr, row, 2), 0)
		end := b.LdGlobalU32(b.Index(rowPtr, row, 2), 4)
		sum := b.Var(b.ImmF32(0))
		j := b.Var(start)
		b.While(func() ptx.Value { return b.Setp(sass.CmpLT, j, end) }, func() {
			col := b.LdGlobalU32(b.Index(cols, j, 2), 0)
			v := b.LdGlobalF32(b.Index(vals, j, 2), 0)
			xv := b.LdGlobalF32(b.Index(x, col, 2), 0)
			b.Assign(sum, b.Fma(v, xv, sum))
			b.Assign(j, b.AddI(j, 1))
		})
		b.StGlobalF32(b.Index(y, row, 2), 0, sum)
	})
	return b.Done()
}

// buildSpMVELL builds the ELL kernel: a uniform-trip-count loop over the
// padded column-major arrays, giving coalesced accesses and minimal
// divergence — the miniFE-ELL variant of Figures 7/8.
func buildSpMVELL(name string) (*ptx.Func, error) {
	b := ptx.NewKernel(name)
	cols := b.ParamU64("cols")
	vals := b.ParamU64("vals")
	x := b.ParamU64("x")
	y := b.ParamU64("y")
	nrows := b.ParamU32("nrows")
	perRow := b.ParamU32("perRow")
	row := b.GlobalTidX()
	b.If(b.Setp(sass.CmpLT, row, nrows), func() {
		sum := b.Var(b.ImmF32(0))
		k := b.Var(b.ImmU32(0))
		b.While(func() ptx.Value { return b.Setp(sass.CmpLT, k, perRow) }, func() {
			idx := b.Mad(k, nrows, row) // column-major: coalesced across the warp
			col := b.LdGlobalU32(b.Index(cols, idx, 2), 0)
			v := b.LdGlobalF32(b.Index(vals, idx, 2), 0)
			xv := b.LdGlobalF32(b.Index(x, col, 2), 0)
			b.Assign(sum, b.Fma(v, xv, sum))
			b.Assign(k, b.AddI(k, 1))
		})
		b.StGlobalF32(b.Index(y, row, 2), 0, sum)
	})
	return b.Done()
}

// spmvSpec is Parboil spmv on random CSR matrices with highly variable row
// lengths (small/medium/large).
func spmvSpec() *Spec {
	return &Spec{
		Name:      "parboil.spmv",
		OutputTol: 1e-3,
		Datasets:  []string{"small", "medium", "large"},
		Build: func() (*ptx.Module, error) {
			f, err := buildSpMVCSR("spmv_csr")
			if err != nil {
				return nil, err
			}
			m := ptx.NewModule()
			m.Add(f)
			return m, nil
		},
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			rows, nnz := 1024, 8
			switch dataset {
			case "medium":
				rows, nnz = 2048, 12
			case "large":
				rows, nnz = 4096, 16
			}
			mat := genSparseRandom(rows, nnz, 21)
			return runCSR(ctx, prog, "spmv_csr", mat, fmt.Sprintf("spmv %s rows=%d", dataset, rows))
		},
	}
}

// runCSR uploads a CSR matrix, runs the kernel, and verifies.
func runCSR(ctx *cuda.Context, prog *sass.Program, kernel string, mat *SparseMatrix, banner string) (*Result, error) {
	r := newRNG(31)
	x := r.f32s(mat.Rows, -1, 1)
	dRow := ctx.AllocU32("rowPtr", mat.RowPtr)
	dCol := ctx.AllocU32("cols", mat.Cols)
	dVal := ctx.AllocF32("vals", mat.Vals)
	dx := ctx.AllocF32("x", x)
	dy := ctx.Malloc(uint64(4*mat.Rows), "y")
	if _, err := ctx.LaunchKernel(prog, kernel, sim.LaunchParams{
		Grid: sim.D1((mat.Rows + 127) / 128), Block: sim.D1(128),
		Args: []uint64{uint64(dRow), uint64(dCol), uint64(dVal),
			uint64(dx), uint64(dy), uint64(mat.Rows)},
	}); err != nil {
		return nil, err
	}
	got, err := ctx.ReadF32(dy, mat.Rows)
	if err != nil {
		return nil, err
	}
	want := cpuSpMV(mat, x)
	res := &Result{Output: f32Bytes(got)}
	res.VerifyErr = compareF32(got, want, 1e-3, kernel)
	res.Stdout = fmt.Sprintf("%s %s\n", banner, f32Summary(res.Output))
	return res, nil
}

// minifeSpec is the miniFE conjugate-gradient SpMV step on a 27-point FEM
// matrix, in CSR or ELL format — the Figure 7/8 comparison pair.
func minifeSpec(name, format string) *Spec {
	return &Spec{
		Name:      name,
		Datasets:  []string{"default"},
		OutputTol: 1e-3,
		Build: func() (*ptx.Module, error) {
			m := ptx.NewModule()
			if format == "csr" {
				f, err := buildSpMVCSR("minife_csr")
				if err != nil {
					return nil, err
				}
				m.Add(f)
			} else {
				f, err := buildSpMVELL("minife_ell")
				if err != nil {
					return nil, err
				}
				m.Add(f)
			}
			return m, nil
		},
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			mat := genFEMatrix(12, 41) // 1728 rows, ~27 nnz each
			if format == "csr" {
				return runCSR(ctx, prog, "minife_csr", mat, "minife-csr")
			}
			ell := toELL(mat)
			r := newRNG(31)
			x := r.f32s(mat.Rows, -1, 1)
			dCol := ctx.AllocU32("ellCols", ell.Cols)
			dVal := ctx.AllocF32("ellVals", ell.Vals)
			dx := ctx.AllocF32("x", x)
			dy := ctx.Malloc(uint64(4*mat.Rows), "y")
			if _, err := ctx.LaunchKernel(prog, "minife_ell", sim.LaunchParams{
				Grid: sim.D1((mat.Rows + 127) / 128), Block: sim.D1(128),
				Args: []uint64{uint64(dCol), uint64(dVal), uint64(dx), uint64(dy),
					uint64(mat.Rows), uint64(ell.PerRow)},
			}); err != nil {
				return nil, err
			}
			got, err := ctx.ReadF32(dy, mat.Rows)
			if err != nil {
				return nil, err
			}
			want := cpuSpMV(mat, x)
			res := &Result{Output: f32Bytes(got)}
			res.VerifyErr = compareF32(got, want, 1e-3, "minife_ell")
			res.Stdout = fmt.Sprintf("minife-ell %s\n", f32Summary(res.Output))
			return res, nil
		},
	}
}
