package workloads

import (
	"math"
	"testing"
)

func bytesOfF32(vals ...float32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		putF32(out[4*i:], v)
	}
	return out
}

func TestOutputsMatchExact(t *testing.T) {
	s := &Spec{} // OutputTol == 0: bit-exact
	a := []byte{1, 2, 3, 4}
	b := []byte{1, 2, 3, 4}
	if !s.OutputsMatch(a, b) {
		t.Error("identical buffers mismatch")
	}
	b[2] = 9
	if s.OutputsMatch(a, b) {
		t.Error("differing buffers match in exact mode")
	}
	if s.OutputsMatch(a, a[:3]) {
		t.Error("length mismatch matches")
	}
}

func TestOutputsMatchTolerance(t *testing.T) {
	s := &Spec{OutputTol: 1e-3}
	a := bytesOfF32(100, -5, 0.25)
	within := bytesOfF32(100.05, -5.001, 0.25)
	if !s.OutputsMatch(a, within) {
		t.Error("within-tolerance buffers mismatch")
	}
	beyond := bytesOfF32(101, -5, 0.25)
	if s.OutputsMatch(a, beyond) {
		t.Error("1% error accepted at 0.1% tolerance")
	}
	// A low-order mantissa flip of a float stays within tolerance — the
	// fault-injection masking case.
	v := float32(123.456)
	flipped := math.Float32frombits(math.Float32bits(v) ^ 1)
	if !s.OutputsMatch(bytesOfF32(v), bytesOfF32(flipped)) {
		t.Error("single low mantissa bit flip rejected")
	}
	// An exponent flip is far outside tolerance.
	blown := math.Float32frombits(math.Float32bits(v) ^ (1 << 30))
	if s.OutputsMatch(bytesOfF32(v), bytesOfF32(blown)) {
		t.Error("exponent flip accepted")
	}
}

func TestF32SummaryRounding(t *testing.T) {
	a := bytesOfF32(1, 2, 3, 4)
	b := bytesOfF32(1.0000001, 2, 3, 4)
	if f32Summary(a) != f32Summary(b) {
		t.Error("tiny perturbation changed the rounded summary")
	}
	c := bytesOfF32(10, 2, 3, 4)
	if f32Summary(a) == f32Summary(c) {
		t.Error("large change did not move the summary")
	}
	if f32Summary(nil) != "mean=0" {
		t.Error("empty summary wrong")
	}
}
