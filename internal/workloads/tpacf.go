package workloads

import (
	"fmt"

	"sassi/internal/cuda"
	"sassi/internal/ptx"
	"sassi/internal/sass"
	"sassi/internal/sim"
)

func init() { register(tpacfSpec()) }

const tpacfBins = 16

// tpacfSpec is Parboil tpacf's angular-correlation histogram: every thread
// compares its point against a block of points, walks a data-dependent
// threshold search to pick a histogram bin (heavy branch divergence), and
// accumulates into a shared-memory histogram that is flushed with global
// atomics. The paper's Table 1 shows tpacf among the most divergent codes.
func tpacfSpec() *Spec {
	return &Spec{
		Name:     "parboil.tpacf",
		Datasets: []string{"small"},
		Build: func() (*ptx.Module, error) {
			b := ptx.NewKernel("tpacf")
			b.ReqBlock(128, 1, 1)
			data := b.ParamU64("data") // 3 floats per point (unit vectors)
			hist := b.ParamU64("hist") // tpacfBins uint32 bins
			binB := b.ParamU64("bounds")
			n := b.ParamU32("n")

			histOff := b.F.AllocShared(tpacfBins * 4)

			// Zero the shared histogram cooperatively.
			tx := b.TidX()
			b.If(b.SetpI(sass.CmpLT, tx, tpacfBins), func() {
				b.StSharedU32(b.AddI(b.ShlI(tx, 2), int64(histOff)), 0, b.ImmU32(0))
			})
			b.Bar()

			i := b.GlobalTidX()
			b.If(b.Setp(sass.CmpLT, i, n), func() {
				base := b.Index(data, b.Mul(i, b.ImmU32(3)), 2)
				x1 := b.LdGlobalF32(base, 0)
				y1 := b.LdGlobalF32(base, 4)
				z1 := b.LdGlobalF32(base, 8)
				j := b.Var(b.ImmU32(0))
				b.While(func() ptx.Value { return b.Setp(sass.CmpLT, j, i) }, func() {
					jb := b.Index(data, b.Mul(j, b.ImmU32(3)), 2)
					x2 := b.LdGlobalF32(jb, 0)
					y2 := b.LdGlobalF32(jb, 4)
					z2 := b.LdGlobalF32(jb, 8)
					dot := b.Fma(x1, x2, b.Fma(y1, y2, b.Mul(z1, z2)))
					// Data-dependent threshold walk: k advances while
					// dot < bounds[k] — the divergence source.
					k := b.Var(b.ImmU32(0))
					b.While(func() ptx.Value {
						inRange := b.SetpI(sass.CmpLT, k, tpacfBins-1)
						bound := b.LdGlobalF32(b.Index(binB, k, 2), 0)
						below := b.Setp(sass.CmpLT, dot, bound)
						return b.PAnd(inRange, below)
					}, func() {
						b.Assign(k, b.AddI(k, 1))
					})
					b.AtomAddShared(b.AddI(b.ShlI(k, 2), int64(histOff)), 0, b.ImmU32(1))
					b.Assign(j, b.AddI(j, 1))
				})
			})
			b.Bar()
			// Flush shared histogram to global with atomics.
			b.If(b.SetpI(sass.CmpLT, tx, tpacfBins), func() {
				v := b.LdSharedU32(b.AddI(b.ShlI(tx, 2), int64(histOff)), 0)
				b.AtomAddGlobal(b.Index(hist, tx, 2), 0, v)
			})
			f, err := b.Done()
			if err != nil {
				return nil, err
			}
			m := ptx.NewModule()
			m.Add(f)
			return m, nil
		},
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			const n = 384
			r := newRNG(55)
			pts := make([]float32, 3*n)
			for i := 0; i < n; i++ {
				// Crude unit-ish vectors; exact normalization is irrelevant.
				x, y, z := r.f32()*2-1, r.f32()*2-1, r.f32()*2-1
				pts[3*i], pts[3*i+1], pts[3*i+2] = x, y, z
			}
			bounds := make([]float32, tpacfBins)
			for k := range bounds {
				bounds[k] = 1 - float32(k+1)*(2.0/float32(tpacfBins))
			}
			dData := ctx.AllocF32("data", pts)
			dHist := ctx.AllocU32("hist", make([]uint32, tpacfBins))
			dBounds := ctx.AllocF32("bounds", bounds)
			if _, err := ctx.LaunchKernel(prog, "tpacf", sim.LaunchParams{
				Grid: sim.D1((n + 127) / 128), Block: sim.D1(128),
				Args: []uint64{uint64(dData), uint64(dHist), uint64(dBounds), uint64(n)},
			}); err != nil {
				return nil, err
			}
			got, err := ctx.ReadU32(dHist, tpacfBins)
			if err != nil {
				return nil, err
			}
			// CPU reference.
			want := make([]uint32, tpacfBins)
			for i := 0; i < n; i++ {
				for j := 0; j < i; j++ {
					// Mirror the GPU's operation order bit-for-bit so bin
					// boundaries agree: x*x + (y*y + z*z), float32 each step.
					dot := pts[3*i]*pts[3*j] + (pts[3*i+1]*pts[3*j+1] + pts[3*i+2]*pts[3*j+2])
					k := 0
					for k < tpacfBins-1 && dot < bounds[k] {
						k++
					}
					want[k]++
				}
			}
			res := &Result{Output: u32Bytes(got)}
			res.VerifyErr = compareU32(got, want, "tpacf hist")
			res.Stdout = fmt.Sprintf("tpacf n=%d checksum=%08x\n", n, checksum(res.Output))
			return res, nil
		},
	}
}
