package workloads_test

// The PC-sampling determinism gate: the profile collected by the
// concurrent-SM engine must be bit-identical to the sequential engine's —
// same locations, same weights, same reasons, same serialized pprof bytes.
// Sampling cadence is per-SM modeled cycles and the launch-end merge is
// commutative, so goroutine interleaving must never show through.
//
// The contract is "sampling adds no nondeterminism beyond the
// simulation's own": a workload whose KernelStats already differ between
// the engines (cross-SM atomic ordering feeding control flow, e.g.
// parboil.bfs's frontier queue) is skipped with that evidence, and any
// workload with bit-equal stats but divergent profiles fails.

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"sassi/internal/cuda"
	"sassi/internal/obs/pcsamp"
	"sassi/internal/ptxas"
	"sassi/internal/sim"
	"sassi/internal/workloads"
)

// sampledRun runs a workload on its default dataset with a fresh sampler,
// returning the serialized profile and the per-launch stats.
func sampledRun(t *testing.T, spec *workloads.Spec, cfg sim.Config, period uint64) ([]byte, []sim.KernelStats) {
	t.Helper()
	prog, err := spec.Compile(ptxas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := cuda.NewContext(cfg)
	s := pcsamp.New(period)
	ctx.Device().PCSamp = s
	var stats []sim.KernelStats
	ctx.Subscribe(cuda.LaunchCallbacks{
		PostLaunch: func(kernel string, idx int, ks *sim.KernelStats, err error) {
			if err == nil && ks != nil {
				stats = append(stats, *ks)
			}
		},
	})
	res, err := spec.Run(ctx, prog, spec.DefaultDataset())
	if err != nil {
		t.Fatal(err)
	}
	if res.VerifyErr != nil {
		t.Fatal(res.VerifyErr)
	}
	var b bytes.Buffer
	if err := s.Profile().WriteProto(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes(), stats
}

// TestPCSampParallelBitEqual checks sequential-vs-concurrent profile
// equality on every non-mutant workload (the short gate subset under
// -short), plus run-to-run stability of the concurrent engine.
func TestPCSampParallelBitEqual(t *testing.T) {
	for _, spec := range workloads.All() {
		if strings.HasPrefix(spec.Name, "mutant.") {
			continue
		}
		if testing.Short() && !shortGateSet[spec.Name] {
			continue
		}
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			seq := sim.MiniGPU()
			seq.SequentialSMs = true
			want, seqStats := sampledRun(t, spec, seq, pcsamp.DefaultPeriod)
			if len(want) == 0 {
				t.Fatal("sequential profile is empty")
			}
			par := sim.MiniGPU()
			par.SequentialSMs = false
			for i := 0; i < 2; i++ {
				got, parStats := sampledRun(t, spec, par, pcsamp.DefaultPeriod)
				if !reflect.DeepEqual(parStats, seqStats) {
					t.Skipf("simulation itself is engine-order-dependent (stats differ); profile equality not applicable")
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("parallel run %d profile diverges from sequential (%d vs %d bytes) despite bit-equal stats",
						i, len(got), len(want))
				}
			}
		})
	}
}
