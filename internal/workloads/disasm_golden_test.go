package workloads

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sassi/internal/ptxas"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestDisassemblyGolden pins the exact SASS the backend emits for three
// representative workloads against checked-in golden files. Any change to
// lowering, optimization passes, register allocation, or the disassembly
// format shows up as a reviewable textual diff instead of a silent shift
// in every downstream experiment (instruction counts, fault-injection
// site numbering, overhead figures all key off this code).
func TestDisassemblyGolden(t *testing.T) {
	for _, name := range []string{"parboil.sgemm", "parboil.bfs", "parboil.stencil"} {
		t.Run(name, func(t *testing.T) {
			spec, ok := Get(name)
			if !ok {
				t.Fatalf("workload %q not registered", name)
			}
			m, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			prog, err := ptxas.Compile(m, ptxas.Options{})
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			for _, k := range prog.Kernels {
				b.WriteString(k.Disassemble())
				b.WriteByte('\n')
			}
			got := b.String()

			golden := filepath.Join("testdata", "golden",
				strings.ReplaceAll(name, ".", "-")+".sass")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run `go test -run DisassemblyGolden -update ./internal/workloads` to create it)", err)
			}
			if got != string(want) {
				t.Errorf("SASS for %s changed; diff against %s.\n"+
					"If the change is intended, regenerate with -update.\n--- got ---\n%s",
					name, golden, got)
			}
		})
	}
}
