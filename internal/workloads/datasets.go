package workloads

import (
	"encoding/binary"
	"math"
)

// rng is a deterministic xorshift64* generator so every dataset is
// reproducible without touching math/rand's global state.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// f32 returns a uniform float32 in [0, 1).
func (r *rng) f32() float32 {
	return float32(r.next()>>40) / float32(1<<24)
}

// f32s fills a deterministic float slice in [lo, hi).
func (r *rng) f32s(n int, lo, hi float32) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = lo + (hi-lo)*r.f32()
	}
	return out
}

func putU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }
func putF32(b []byte, v float32) {
	binary.LittleEndian.PutUint32(b, math.Float32bits(v))
}

// f32bitsOf exposes float bit patterns for kernel arguments.
func f32bitsOf(f float32) uint32 { return math.Float32bits(f) }

// f32FromBytes decodes a little-endian float32.
func f32FromBytes(b []byte) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(b))
}

// cos64, sin64 and sqrt64 are float64 math for CPU references.
func cos64(x float64) float64  { return math.Cos(x) }
func sin64(x float64) float64  { return math.Sin(x) }
func sqrt64(x float64) float64 { return math.Sqrt(x) }

// Graph is a CSR adjacency structure used by the BFS workloads.
type Graph struct {
	N      int
	RowPtr []uint32 // length N+1
	Cols   []uint32 // length RowPtr[N]
}

// Edges returns the edge count.
func (g *Graph) Edges() int { return len(g.Cols) }

// genUniformGraph makes a random directed graph with roughly avgDeg
// out-edges per node — the stand-in for Parboil bfs's synthetic "1M"
// input (high degree, small diameter).
func genUniformGraph(n, avgDeg int, seed uint64) *Graph {
	r := newRNG(seed)
	g := &Graph{N: n, RowPtr: make([]uint32, n+1)}
	for v := 0; v < n; v++ {
		deg := avgDeg/2 + r.intn(avgDeg)
		g.RowPtr[v+1] = g.RowPtr[v] + uint32(deg)
	}
	g.Cols = make([]uint32, g.RowPtr[n])
	for i := range g.Cols {
		g.Cols[i] = uint32(r.intn(n))
	}
	return g
}

// genRoadGraph makes a grid-with-diagonals network: degree <= 4-ish and a
// large diameter, the stand-in for the NY/SF/UT road-network inputs. A
// fraction of edges is randomly dropped so row lengths vary.
func genRoadGraph(side int, dropPct int, seed uint64) *Graph {
	r := newRNG(seed)
	n := side * side
	type edge struct{ from, to uint32 }
	var edges []edge
	add := func(a, b int) {
		if r.intn(100) >= dropPct {
			edges = append(edges, edge{uint32(a), uint32(b)})
		}
	}
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			v := y*side + x
			if x+1 < side {
				add(v, v+1)
				add(v+1, v)
			}
			if y+1 < side {
				add(v, v+side)
				add(v+side, v)
			}
			// Occasional shortcut to vary degree.
			if r.intn(100) < 4 {
				add(v, r.intn(n))
			}
		}
	}
	g := &Graph{N: n, RowPtr: make([]uint32, n+1)}
	deg := make([]uint32, n)
	for _, e := range edges {
		deg[e.from]++
	}
	for v := 0; v < n; v++ {
		g.RowPtr[v+1] = g.RowPtr[v] + deg[v]
	}
	g.Cols = make([]uint32, g.RowPtr[n])
	fill := make([]uint32, n)
	copy(fill, g.RowPtr[:n])
	for _, e := range edges {
		g.Cols[fill[e.from]] = e.to
		fill[e.from]++
	}
	return g
}

// bfsGraph returns the graph for a BFS dataset key. Sizes are scaled down
// from the paper's inputs so instrumented simulation stays fast; the
// degree-distribution *shapes* (random vs road-network) are preserved.
func bfsGraph(dataset string) *Graph {
	switch dataset {
	case "1M":
		return genUniformGraph(6000, 8, 101)
	case "NY":
		return genRoadGraph(56, 12, 102) // 3136 nodes, sparse grid
	case "SF":
		return genRoadGraph(72, 8, 103)
	case "UT":
		return genRoadGraph(40, 16, 104)
	default:
		return genUniformGraph(1024, 6, 105)
	}
}

// cpuBFS computes reference levels.
func cpuBFS(g *Graph, src int) []uint32 {
	const inf = 0xffffffff
	lvl := make([]uint32, g.N)
	for i := range lvl {
		lvl[i] = inf
	}
	lvl[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for j := g.RowPtr[v]; j < g.RowPtr[v+1]; j++ {
			w := int(g.Cols[j])
			if lvl[w] == inf {
				lvl[w] = lvl[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return lvl
}

// SparseMatrix is a CSR matrix for spmv/miniFE.
type SparseMatrix struct {
	Rows   int
	RowPtr []uint32
	Cols   []uint32
	Vals   []float32
}

// genSparseRandom makes a CSR matrix with highly variable row lengths —
// the irregular access pattern of Parboil spmv.
func genSparseRandom(rows, avgNnz int, seed uint64) *SparseMatrix {
	r := newRNG(seed)
	m := &SparseMatrix{Rows: rows, RowPtr: make([]uint32, rows+1)}
	for i := 0; i < rows; i++ {
		nnz := 1 + r.intn(2*avgNnz)
		m.RowPtr[i+1] = m.RowPtr[i] + uint32(nnz)
	}
	total := int(m.RowPtr[rows])
	m.Cols = make([]uint32, total)
	m.Vals = make([]float32, total)
	for i := range m.Cols {
		m.Cols[i] = uint32(r.intn(rows))
		m.Vals[i] = r.f32() - 0.5
	}
	return m
}

// genFEMatrix makes a miniFE-like matrix: a 27-point hexahedral stencil on
// a side^3 grid. Interior rows have 27 entries, faces/edges fewer, so CSR
// rows are near-uniform but column indices stride in 3D — mildly irregular
// gathers, exactly the miniFE sparsity.
func genFEMatrix(side int, seed uint64) *SparseMatrix {
	r := newRNG(seed)
	n := side * side * side
	m := &SparseMatrix{Rows: n, RowPtr: make([]uint32, n+1)}
	var cols []uint32
	var vals []float32
	idx := func(x, y, z int) int { return (z*side+y)*side + x }
	for z := 0; z < side; z++ {
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				row := idx(x, y, z)
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							nx, ny, nz := x+dx, y+dy, z+dz
							if nx < 0 || ny < 0 || nz < 0 || nx >= side || ny >= side || nz >= side {
								continue
							}
							cols = append(cols, uint32(idx(nx, ny, nz)))
							v := r.f32()*0.1 - 0.05
							if dx == 0 && dy == 0 && dz == 0 {
								v = 26.0 // diagonally dominant
							}
							vals = append(vals, v)
						}
					}
				}
				m.RowPtr[row+1] = uint32(len(cols))
			}
		}
	}
	m.Cols = cols
	m.Vals = vals
	return m
}

// ELLMatrix is the column-major padded format miniFE-ELL uses.
type ELLMatrix struct {
	Rows   int
	PerRow int
	Cols   []uint32  // PerRow*Rows, column-major: Cols[k*Rows+row]
	Vals   []float32 // same layout; padding entries have Vals==0
}

// toELL converts CSR to ELL (padding short rows).
func toELL(m *SparseMatrix) *ELLMatrix {
	perRow := 0
	for i := 0; i < m.Rows; i++ {
		if n := int(m.RowPtr[i+1] - m.RowPtr[i]); n > perRow {
			perRow = n
		}
	}
	e := &ELLMatrix{Rows: m.Rows, PerRow: perRow,
		Cols: make([]uint32, perRow*m.Rows),
		Vals: make([]float32, perRow*m.Rows)}
	for i := 0; i < m.Rows; i++ {
		k := 0
		for j := m.RowPtr[i]; j < m.RowPtr[i+1]; j++ {
			e.Cols[k*m.Rows+i] = m.Cols[j]
			e.Vals[k*m.Rows+i] = m.Vals[j]
			k++
		}
		for ; k < perRow; k++ {
			e.Cols[k*m.Rows+i] = uint32(i) // benign in-range column, val 0
		}
	}
	return e
}

// cpuSpMV computes the reference y = A*x.
func cpuSpMV(m *SparseMatrix, x []float32) []float32 {
	y := make([]float32, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var sum float32
		for j := m.RowPtr[i]; j < m.RowPtr[i+1]; j++ {
			sum += m.Vals[j] * x[m.Cols[j]]
		}
		y[i] = sum
	}
	return y
}
