package workloads_test

import (
	"reflect"
	"testing"

	"sassi/internal/cuda"
	"sassi/internal/ptxas"
	"sassi/internal/sim"
	"sassi/internal/workloads"
)

// collectStats runs a workload and returns the KernelStats of every launch,
// in launch order.
func collectStats(t *testing.T, name, dataset string, cfg sim.Config) []sim.KernelStats {
	t.Helper()
	spec, ok := workloads.Get(name)
	if !ok {
		t.Fatalf("%s not registered", name)
	}
	prog, err := spec.Compile(ptxas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := cuda.NewContext(cfg)
	var all []sim.KernelStats
	ctx.Subscribe(cuda.LaunchCallbacks{
		PostLaunch: func(kernel string, idx int, stats *sim.KernelStats, err error) {
			if err != nil {
				t.Errorf("launch %d (%s): %v", idx, kernel, err)
				return
			}
			all = append(all, *stats)
		},
	})
	res, err := spec.Run(ctx, prog, dataset)
	if err != nil {
		t.Fatal(err)
	}
	if res.VerifyErr != nil {
		t.Fatal(res.VerifyErr)
	}
	return all
}

// TestParallelSMsBitEqualStats is the workload-level determinism contract on
// a divergent graph workload: rodinia.bfs (level-synchronous, no cross-CTA
// data races) must produce per-launch KernelStats bit-equal between the
// concurrent-SM engine and the sequential escape hatch, across device
// models and across repeated parallel runs.
func TestParallelSMsBitEqualStats(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  sim.Config
	}{
		{"mini", sim.MiniGPU()},
		{"k10", sim.KeplerK10()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seq := tc.cfg
			seq.SequentialSMs = true
			want := collectStats(t, "rodinia.bfs", "default", seq)
			if len(want) < 2 {
				t.Fatalf("bfs launched %d kernels, expected its two-kernel level loop", len(want))
			}
			par := tc.cfg
			par.SequentialSMs = false
			for i := 0; i < 2; i++ {
				got := collectStats(t, "rodinia.bfs", "default", par)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("parallel run %d stats diverge from sequential:\n got %+v\nwant %+v", i, got, want)
				}
			}
		})
	}
}
