package workloads

import (
	"fmt"

	"sassi/internal/cuda"
	"sassi/internal/ptx"
	"sassi/internal/sass"
	"sassi/internal/sim"
)

func init() {
	register(bfsParboilSpec())
	register(bfsRodiniaSpec())
}

const bfsInf = 0xffffffff

// buildBFSParboil builds the frontier-queue BFS kernel: each thread takes
// one frontier node, scans its (variable-length) adjacency list, labels
// unvisited neighbors, and appends them to the next frontier with a global
// atomic — data-dependent branching and irregular gathers throughout.
func buildBFSParboil() (*ptx.Func, error) {
	b := ptx.NewKernel("bfs_kernel")
	rowPtr := b.ParamU64("rowPtr")
	cols := b.ParamU64("cols")
	levels := b.ParamU64("levels")
	frontier := b.ParamU64("frontier")
	next := b.ParamU64("next")
	nextCnt := b.ParamU64("nextCnt")
	fsize := b.ParamU32("fsize")
	level := b.ParamU32("level")

	tid := b.GlobalTidX()
	b.If(b.Setp(sass.CmpLT, tid, fsize), func() {
		node := b.LdGlobalU32(b.Index(frontier, tid, 2), 0)
		start := b.LdGlobalU32(b.Index(rowPtr, node, 2), 0)
		end := b.LdGlobalU32(b.Index(rowPtr, node, 2), 4)
		j := b.Var(start)
		b.While(func() ptx.Value { return b.Setp(sass.CmpLT, j, end) }, func() {
			nbr := b.LdGlobalU32(b.Index(cols, j, 2), 0)
			lv := b.LdGlobalU32(b.Index(levels, nbr, 2), 0)
			unseen := b.SetpI(sass.CmpEQ, lv, int64(int32(-1)))
			b.If(unseen, func() {
				b.StGlobalU32(b.Index(levels, nbr, 2), 0, b.AddI(level, 1))
				pos := b.AtomAddGlobal(nextCnt, 0, b.ImmU32(1))
				b.StGlobalU32(b.Index(next, pos, 2), 0, nbr)
			})
			b.Assign(j, b.AddI(j, 1))
		})
	})
	return b.Done()
}

// bfsParboilSpec is Parboil bfs with the paper's four datasets mapped to
// synthetic graphs of matching shape: "1M" is a random graph (high degree,
// small diameter); NY/SF/UT are road-network-like sparse grids.
func bfsParboilSpec() *Spec {
	return &Spec{
		Name:     "parboil.bfs",
		Datasets: []string{"1M", "NY", "SF", "UT"},
		Build: func() (*ptx.Module, error) {
			f, err := buildBFSParboil()
			if err != nil {
				return nil, err
			}
			m := ptx.NewModule()
			m.Add(f)
			return m, nil
		},
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			g := bfsGraph(dataset)
			src := 0

			dRow := ctx.AllocU32("rowPtr", g.RowPtr)
			dCol := ctx.AllocU32("cols", g.Cols)
			lv := make([]uint32, g.N)
			for i := range lv {
				lv[i] = bfsInf
			}
			lv[src] = 0
			dLev := ctx.AllocU32("levels", lv)
			// Frontier double buffers sized to the duplicate-enqueue worst
			// case (every edge enqueues its head once).
			cap := uint64(4 * (g.Edges() + g.N + 64))
			dFrontA := ctx.Malloc(cap, "frontierA")
			dFrontB := ctx.Malloc(cap, "frontierB")
			dCnt := ctx.Malloc(8, "nextCnt")
			_ = ctx.Memset32(dFrontA, uint32(src), 1)

			cur, nxt := dFrontA, dFrontB
			fsize := uint32(1)
			for level := uint32(0); fsize > 0 && level < uint32(g.N); level++ {
				_ = ctx.Memset32(dCnt, 0, 1)
				if _, err := ctx.LaunchKernel(prog, "bfs_kernel", sim.LaunchParams{
					Grid: sim.D1((int(fsize) + 127) / 128), Block: sim.D1(128),
					Args: []uint64{uint64(dRow), uint64(dCol), uint64(dLev),
						uint64(cur), uint64(nxt), uint64(dCnt),
						uint64(fsize), uint64(level)},
				}); err != nil {
					return nil, err
				}
				cnt, err := ctx.ReadU32(dCnt, 1)
				if err != nil {
					return nil, err
				}
				fsize = cnt[0]
				if fsize > uint32(g.N) {
					// Duplicates can only overflow on corrupted runs; clamp
					// so the (fault-injected) app terminates.
					fsize = uint32(g.N)
				}
				cur, nxt = nxt, cur
			}

			got, err := ctx.ReadU32(dLev, g.N)
			if err != nil {
				return nil, err
			}
			want := cpuBFS(g, src)
			res := &Result{Output: u32Bytes(got)}
			res.VerifyErr = compareU32(got, want, "bfs levels")
			reach := 0
			for _, l := range got {
				if l != bfsInf {
					reach++
				}
			}
			res.Stdout = fmt.Sprintf("bfs %s n=%d reached=%d checksum=%08x\n",
				dataset, g.N, reach, checksum(res.Output))
			return res, nil
		},
	}
}

// buildBFSRodinia builds the two level-synchronous Rodinia kernels.
func buildBFSRodinia() (*ptx.Module, error) {
	m := ptx.NewModule()

	// Kernel 1: expand the current mask.
	b := ptx.NewKernel("bfs_kernel1")
	rowPtr := b.ParamU64("rowPtr")
	cols := b.ParamU64("cols")
	mask := b.ParamU64("mask")
	updating := b.ParamU64("updating")
	visited := b.ParamU64("visited")
	cost := b.ParamU64("cost")
	n := b.ParamU32("n")
	tid := b.GlobalTidX()
	inRange := b.Setp(sass.CmpLT, tid, n)
	b.If(inRange, func() {
		m1 := b.LdGlobalU32(b.Index(mask, tid, 2), 0)
		b.If(b.SetpI(sass.CmpNE, m1, 0), func() {
			b.StGlobalU32(b.Index(mask, tid, 2), 0, b.ImmU32(0))
			myCost := b.LdGlobalU32(b.Index(cost, tid, 2), 0)
			start := b.LdGlobalU32(b.Index(rowPtr, tid, 2), 0)
			end := b.LdGlobalU32(b.Index(rowPtr, tid, 2), 4)
			j := b.Var(start)
			b.While(func() ptx.Value { return b.Setp(sass.CmpLT, j, end) }, func() {
				nbr := b.LdGlobalU32(b.Index(cols, j, 2), 0)
				vis := b.LdGlobalU32(b.Index(visited, nbr, 2), 0)
				b.If(b.SetpI(sass.CmpEQ, vis, 0), func() {
					b.StGlobalU32(b.Index(cost, nbr, 2), 0, b.AddI(myCost, 1))
					b.StGlobalU32(b.Index(updating, nbr, 2), 0, b.ImmU32(1))
				})
				b.Assign(j, b.AddI(j, 1))
			})
		})
	})
	f1, err := b.Done()
	if err != nil {
		return nil, err
	}
	m.Add(f1)

	// Kernel 2: commit the updating mask.
	b2 := ptx.NewKernel("bfs_kernel2")
	mask2 := b2.ParamU64("mask")
	updating2 := b2.ParamU64("updating")
	visited2 := b2.ParamU64("visited")
	changed := b2.ParamU64("changed")
	n2 := b2.ParamU32("n")
	tid2 := b2.GlobalTidX()
	b2.If(b2.Setp(sass.CmpLT, tid2, n2), func() {
		u := b2.LdGlobalU32(b2.Index(updating2, tid2, 2), 0)
		b2.If(b2.SetpI(sass.CmpNE, u, 0), func() {
			b2.StGlobalU32(b2.Index(mask2, tid2, 2), 0, b2.ImmU32(1))
			b2.StGlobalU32(b2.Index(visited2, tid2, 2), 0, b2.ImmU32(1))
			b2.StGlobalU32(b2.Index(updating2, tid2, 2), 0, b2.ImmU32(0))
			b2.StGlobalU32(changed, 0, b2.ImmU32(1))
		})
	})
	f2, err := b2.Done()
	if err != nil {
		return nil, err
	}
	m.Add(f2)
	return m, nil
}

// bfsRodiniaSpec is Rodinia bfs: level-synchronous over all nodes, two
// kernels per level.
func bfsRodiniaSpec() *Spec {
	return &Spec{
		Name:     "rodinia.bfs",
		Datasets: []string{"default"},
		Build:    buildBFSRodinia,
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			g := genUniformGraph(4096, 6, 202)
			src := 0
			dRow := ctx.AllocU32("rowPtr", g.RowPtr)
			dCol := ctx.AllocU32("cols", g.Cols)
			maskInit := make([]uint32, g.N)
			maskInit[src] = 1
			visInit := make([]uint32, g.N)
			visInit[src] = 1
			costInit := make([]uint32, g.N)
			for i := range costInit {
				costInit[i] = bfsInf
			}
			costInit[src] = 0
			dMask := ctx.AllocU32("mask", maskInit)
			dUpd := ctx.AllocU32("updating", make([]uint32, g.N))
			dVis := ctx.AllocU32("visited", visInit)
			dCost := ctx.AllocU32("cost", costInit)
			dChanged := ctx.Malloc(4, "changed")

			grid := sim.D1((g.N + 127) / 128)
			for iter := 0; iter < g.N; iter++ {
				_ = ctx.Memset32(dChanged, 0, 1)
				if _, err := ctx.LaunchKernel(prog, "bfs_kernel1", sim.LaunchParams{
					Grid: grid, Block: sim.D1(128),
					Args: []uint64{uint64(dRow), uint64(dCol), uint64(dMask),
						uint64(dUpd), uint64(dVis), uint64(dCost), uint64(g.N)},
				}); err != nil {
					return nil, err
				}
				if _, err := ctx.LaunchKernel(prog, "bfs_kernel2", sim.LaunchParams{
					Grid: grid, Block: sim.D1(128),
					Args: []uint64{uint64(dMask), uint64(dUpd), uint64(dVis),
						uint64(dChanged), uint64(g.N)},
				}); err != nil {
					return nil, err
				}
				ch, err := ctx.ReadU32(dChanged, 1)
				if err != nil {
					return nil, err
				}
				if ch[0] == 0 {
					break
				}
			}
			got, err := ctx.ReadU32(dCost, g.N)
			if err != nil {
				return nil, err
			}
			want := cpuBFS(g, src)
			res := &Result{Output: u32Bytes(got)}
			res.VerifyErr = compareU32(got, want, "bfs cost")
			res.Stdout = fmt.Sprintf("rodinia-bfs n=%d checksum=%08x\n", g.N, checksum(res.Output))
			return res, nil
		},
	}
}
