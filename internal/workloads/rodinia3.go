package workloads

import (
	"fmt"

	"sassi/internal/cuda"
	"sassi/internal/ptx"
	"sassi/internal/sass"
	"sassi/internal/sim"
)

func init() {
	register(btreeSpec())
	register(nwSpec())
	register(lavamdSpec())
	register(mummerSpec())
	register(ludSpec())
}

// btreeSpec is Rodinia b+tree: batched key search over a node-linked tree.
// Each thread walks root-to-leaf comparing its key against node fences —
// pointer chasing with data-dependent comparisons (scalar-heavy values,
// divergent at the leaves).
func btreeSpec() *Spec {
	const order = 8 // keys per node
	return &Spec{
		Name:     "rodinia.b+tree",
		Datasets: []string{"small"},
		Build: func() (*ptx.Module, error) {
			b := ptx.NewKernel("btree_find")
			// Node layout (uint32 words): keys[order], children[order+1],
			// isLeaf. Children hold node indices; at leaves they hold
			// value payloads.
			nodes := b.ParamU64("nodes")
			queries := b.ParamU64("queries")
			out := b.ParamU64("out")
			n := b.ParamU32("n")
			height := b.ParamU32("height")
			const stride = order + order + 1 + 1 // words per node
			i := b.GlobalTidX()
			b.If(b.Setp(sass.CmpLT, i, n), func() {
				key := b.LdGlobalU32(b.Index(queries, i, 2), 0)
				node := b.Var(b.ImmU32(0))
				lvl := b.Var(b.ImmU32(0))
				b.While(func() ptx.Value { return b.Setp(sass.CmpLT, lvl, height) }, func() {
					base := b.Mul(node, b.ImmU32(stride))
					// Find first key > query (linear fence scan).
					k := b.Var(b.ImmU32(0))
					b.While(func() ptx.Value {
						inRange := b.SetpI(sass.CmpLT, k, order)
						fence := b.LdGlobalU32(b.Index(nodes, b.Add(base, k), 2), 0)
						return b.PAnd(inRange, b.Setp(sass.CmpLE, fence, key))
					}, func() {
						b.Assign(k, b.AddI(k, 1))
					})
					child := b.LdGlobalU32(b.Index(nodes, b.Add(base, b.AddI(k, order)), 2), 0)
					b.Assign(node, child)
					b.Assign(lvl, b.AddI(lvl, 1))
				})
				b.StGlobalU32(b.Index(out, i, 2), 0, node)
			})
			f, err := b.Done()
			if err != nil {
				return nil, err
			}
			m := ptx.NewModule()
			m.Add(f)
			return m, nil
		},
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			const stride = order + order + 1 + 1
			const height = 3
			// Build a dense tree: order^height leaves keyed 0..N.
			numInner := 1 + order + order*order // levels 0..2 node counts
			numNodes := numInner
			nodes := make([]uint32, numNodes*stride)
			// Key space: leaves represent buckets of width 1; inner fences
			// split evenly.
			var buildNode func(id, lo, hi, lvl int) // [lo,hi) key range
			next := 1
			buildNode = func(id, lo, hi, lvl int) {
				base := id * stride
				span := (hi - lo) / order
				if span < 1 {
					span = 1
				}
				for k := 0; k < order; k++ {
					fence := lo + (k+1)*span
					nodes[base+k] = uint32(fence)
				}
				for c := 0; c <= order; c++ {
					if lvl == height-1 {
						// Leaf child: payload = bucket id.
						nodes[base+order+c] = uint32(lo + c*span)
					} else if c < order {
						child := next
						next++
						nodes[base+order+c] = uint32(child)
						buildNode(child, lo+c*span, lo+(c+1)*span, lvl+1)
					} else {
						nodes[base+order+c] = nodes[base+order+c-1]
					}
				}
			}
			// Only two levels of inner nodes are walked before payloads;
			// height=3 walks: root -> inner -> payload.
			buildNode(0, 0, 512, 1)
			const nq = 1024
			r := newRNG(191)
			queries := make([]uint32, nq)
			for i := range queries {
				queries[i] = uint32(r.intn(512))
			}
			dNodes := ctx.AllocU32("nodes", nodes)
			dQ := ctx.AllocU32("queries", queries)
			dOut := ctx.Malloc(4*nq, "out")
			if _, err := ctx.LaunchKernel(prog, "btree_find", sim.LaunchParams{
				Grid: sim.D1((nq + 127) / 128), Block: sim.D1(128),
				Args: []uint64{uint64(dNodes), uint64(dQ), uint64(dOut),
					uint64(nq), uint64(2)},
			}); err != nil {
				return nil, err
			}
			got, err := ctx.ReadU32(dOut, nq)
			if err != nil {
				return nil, err
			}
			// CPU reference walk.
			want := make([]uint32, nq)
			for i, q := range queries {
				node := uint32(0)
				for lvl := 0; lvl < 2; lvl++ {
					base := int(node) * stride
					k := 0
					for k < order && nodes[base+k] <= q {
						k++
					}
					node = nodes[base+order+k]
				}
				want[i] = node
			}
			res := &Result{Output: u32Bytes(got)}
			res.VerifyErr = compareU32(got, want, "b+tree")
			res.Stdout = fmt.Sprintf("b+tree queries=%d checksum=%08x\n", nq, checksum(res.Output))
			return res, nil
		},
	}
}

// nwSpec is Rodinia needle (Needleman-Wunsch): anti-diagonal wavefronts of
// the alignment score matrix, one kernel launch per diagonal.
func nwSpec() *Spec {
	return &Spec{
		Name:     "rodinia.nw",
		Datasets: []string{"small"},
		Build: func() (*ptx.Module, error) {
			b := ptx.NewKernel("nw_diag")
			score := b.ParamU64("score") // (n+1)x(n+1) matrix of int32
			ref := b.ParamU64("ref")     // similarity matrix entries for cells
			n := b.ParamU32("n")
			diag := b.ParamU32("diag") // current anti-diagonal (2..2n)
			penalty := b.ParamU32("penalty")
			t := b.GlobalTidX()
			// Cells on the diagonal: i+j = diag, 1<=i,j<=n.
			// i = max(1, diag-n) + t; the subtraction must be signed or
			// diag<n underflows.
			one := b.ImmU32(1)
			lowI := b.AsU32(b.Max(b.ImmS32(1), b.Sub(b.AsS32(diag), b.AsS32(n))))
			i := b.Add(lowI, t)
			j := b.Sub(diag, i)
			valid := b.PAnd(b.Setp(sass.CmpLE, i, n),
				b.PAnd(b.SetpI(sass.CmpGE, j, 1), b.Setp(sass.CmpLE, j, n)))
			b.If(valid, func() {
				w := b.AddI(n, 1)
				idx := b.Mad(i, w, j)
				nw := b.AsS32(b.LdGlobalU32(b.Index(score, b.Sub(b.Sub(idx, w), one), 2), 0))
				up := b.AsS32(b.LdGlobalU32(b.Index(score, b.Sub(idx, w), 2), 0))
				left := b.AsS32(b.LdGlobalU32(b.Index(score, b.SubI(idx, 1), 2), 0))
				sim := b.AsS32(b.LdGlobalU32(b.Index(ref, idx, 2), 0))
				d := b.Add(nw, sim)
				p := b.AsS32(penalty)
				best := b.Max(d, b.Max(b.Sub(up, p), b.Sub(left, p)))
				b.StGlobalU32(b.Index(score, idx, 2), 0, b.AsU32(best))
			})
			f, err := b.Done()
			if err != nil {
				return nil, err
			}
			m := ptx.NewModule()
			m.Add(f)
			return m, nil
		},
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			const n = 48
			const penalty = 1
			w := n + 1
			r := newRNG(201)
			ref := make([]uint32, w*w)
			for i := 1; i <= n; i++ {
				for j := 1; j <= n; j++ {
					ref[i*w+j] = uint32(int32(r.intn(21) - 10))
				}
			}
			score := make([]uint32, w*w)
			for i := 0; i <= n; i++ {
				score[i*w] = uint32(int32(-i * penalty))
				score[i] = uint32(int32(-i * penalty))
			}
			dScore := ctx.AllocU32("score", score)
			dRef := ctx.AllocU32("ref", ref)
			for diag := 2; diag <= 2*n; diag++ {
				cells := n
				if _, err := ctx.LaunchKernel(prog, "nw_diag", sim.LaunchParams{
					Grid: sim.D1((cells + 63) / 64), Block: sim.D1(64),
					Args: []uint64{uint64(dScore), uint64(dRef),
						uint64(n), uint64(diag), uint64(penalty)},
				}); err != nil {
					return nil, err
				}
			}
			got, err := ctx.ReadU32(dScore, w*w)
			if err != nil {
				return nil, err
			}
			want := append([]uint32(nil), score...)
			for i := 1; i <= n; i++ {
				for j := 1; j <= n; j++ {
					d := int32(want[(i-1)*w+j-1]) + int32(ref[i*w+j])
					up := int32(want[(i-1)*w+j]) - penalty
					left := int32(want[i*w+j-1]) - penalty
					best := d
					if up > best {
						best = up
					}
					if left > best {
						best = left
					}
					want[i*w+j] = uint32(best)
				}
			}
			res := &Result{Output: u32Bytes(got)}
			res.VerifyErr = compareU32(got, want, "nw score")
			res.Stdout = fmt.Sprintf("nw n=%d score=%d checksum=%08x\n",
				n, int32(got[n*w+n]), checksum(res.Output))
			return res, nil
		},
	}
}

// lavamdSpec is Rodinia lavaMD: particles in a box interact with particles
// in neighbor boxes — nested uniform loops with gathered reads.
func lavamdSpec() *Spec {
	return &Spec{
		Name:      "rodinia.lavaMD",
		OutputTol: 2e-2,
		Datasets:  []string{"small"},
		Build: func() (*ptx.Module, error) {
			b := ptx.NewKernel("lavamd")
			pos := b.ParamU64("pos") // 3 floats per particle
			nbr := b.ParamU64("nbr") // neighbor box ids per box
			force := b.ParamU64("force")
			perBox := b.ParamU32("perBox")
			nnbr := b.ParamU32("nnbr")
			// One thread per particle; box = ctaid, particle = tid.
			box := b.CtaX()
			p := b.TidX()
			i := b.Mad(box, perBox, p)
			myBase := b.Index(pos, b.Mul(i, b.ImmU32(3)), 2)
			x := b.LdGlobalF32(myBase, 0)
			y := b.LdGlobalF32(myBase, 4)
			z := b.LdGlobalF32(myBase, 8)
			acc := b.Var(b.ImmF32(0))
			k := b.Var(b.ImmU32(0))
			b.While(func() ptx.Value { return b.Setp(sass.CmpLT, k, nnbr) }, func() {
				nb := b.LdGlobalU32(b.Index(nbr, b.Mad(box, nnbr, k), 2), 0)
				q := b.Var(b.ImmU32(0))
				b.While(func() ptx.Value { return b.Setp(sass.CmpLT, q, perBox) }, func() {
					j := b.Mad(nb, perBox, q)
					jb := b.Index(pos, b.Mul(j, b.ImmU32(3)), 2)
					dx := b.Sub(x, b.LdGlobalF32(jb, 0))
					dy := b.Sub(y, b.LdGlobalF32(jb, 4))
					dz := b.Sub(z, b.LdGlobalF32(jb, 8))
					r2 := b.Fma(dx, dx, b.Fma(dy, dy, b.Mul(dz, dz)))
					// Soft-core potential contribution.
					b.Assign(acc, b.Add(acc, b.Rcp(b.Add(r2, b.ImmF32(0.5)))))
					b.Assign(q, b.AddI(q, 1))
				})
				b.Assign(k, b.AddI(k, 1))
			})
			b.StGlobalF32(b.Index(force, i, 2), 0, acc)
			f, err := b.Done()
			if err != nil {
				return nil, err
			}
			m := ptx.NewModule()
			m.Add(f)
			return m, nil
		},
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			const boxes, perBox, nnbr = 8, 32, 4
			n := boxes * perBox
			r := newRNG(211)
			pos := r.f32s(3*n, 0, 4)
			nbrs := make([]uint32, boxes*nnbr)
			for bx := 0; bx < boxes; bx++ {
				for k := 0; k < nnbr; k++ {
					nbrs[bx*nnbr+k] = uint32((bx + k) % boxes)
				}
			}
			dPos := ctx.AllocF32("pos", pos)
			dNbr := ctx.AllocU32("nbr", nbrs)
			dF := ctx.Malloc(uint64(4*n), "force")
			if _, err := ctx.LaunchKernel(prog, "lavamd", sim.LaunchParams{
				Grid: sim.D1(boxes), Block: sim.D1(perBox),
				Args: []uint64{uint64(dPos), uint64(dNbr), uint64(dF),
					uint64(perBox), uint64(nnbr)},
			}); err != nil {
				return nil, err
			}
			got, err := ctx.ReadF32(dF, n)
			if err != nil {
				return nil, err
			}
			want := make([]float32, n)
			for bx := 0; bx < boxes; bx++ {
				for p := 0; p < perBox; p++ {
					i := bx*perBox + p
					var acc float32
					for k := 0; k < nnbr; k++ {
						nb := int(nbrs[bx*nnbr+k])
						for q := 0; q < perBox; q++ {
							j := nb*perBox + q
							dx := pos[3*i] - pos[3*j]
							dy := pos[3*i+1] - pos[3*j+1]
							dz := pos[3*i+2] - pos[3*j+2]
							r2 := dx*dx + (dy*dy + dz*dz)
							acc += 1 / (r2 + 0.5)
						}
					}
					want[i] = acc
				}
			}
			res := &Result{Output: f32Bytes(got)}
			res.VerifyErr = compareF32(got, want, 2e-2, "lavaMD")
			res.Stdout = fmt.Sprintf("lavaMD n=%d %s\n", n, f32Summary(res.Output))
			return res, nil
		},
	}
}

// mummerSpec approximates mummergpu: match query strings against a
// reference by walking a byte-comparison loop with data-dependent exits —
// string matching's characteristic divergence.
func mummerSpec() *Spec {
	return &Spec{
		Name:     "rodinia.mummergpu",
		Datasets: []string{"small"},
		Build: func() (*ptx.Module, error) {
			b := ptx.NewKernel("mummer_match")
			refS := b.ParamU64("ref")
			queries := b.ParamU64("queries") // qlen bytes each
			out := b.ParamU64("out")         // best match length per query
			nq := b.ParamU32("nq")
			qlen := b.ParamU32("qlen")
			rlen := b.ParamU32("rlen")
			i := b.GlobalTidX()
			b.If(b.Setp(sass.CmpLT, i, nq), func() {
				qBase := b.Mul(i, qlen)
				best := b.Var(b.ImmU32(0))
				s := b.Var(b.ImmU32(0))
				end := b.Sub(rlen, qlen)
				b.While(func() ptx.Value { return b.Setp(sass.CmpLT, s, end) }, func() {
					m := b.Var(b.ImmU32(0))
					// Extend the match while bytes agree.
					b.While(func() ptx.Value {
						inQ := b.Setp(sass.CmpLT, m, qlen)
						qc := b.LdGlobalU8(b.Index(refS, b.Add(s, m), 0), 0)
						// NOTE: loads query via the queries pointer below.
						qq := b.LdGlobalU8(b.Index(queries, b.Add(qBase, m), 0), 0)
						return b.PAnd(inQ, b.Setp(sass.CmpEQ, qc, qq))
					}, func() {
						b.Assign(m, b.AddI(m, 1))
					})
					b.Assign(best, b.Max(best, m))
					b.Assign(s, b.AddI(s, 1))
				})
				b.StGlobalU32(b.Index(out, i, 2), 0, best)
			})
			f, err := b.Done()
			if err != nil {
				return nil, err
			}
			m := ptx.NewModule()
			m.Add(f)
			return m, nil
		},
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			const nq, qlen, rlen = 256, 8, 512
			r := newRNG(221)
			refRaw := make([]byte, rlen)
			for i := range refRaw {
				refRaw[i] = byte("ACGT"[r.intn(4)])
			}
			qRaw := make([]byte, nq*qlen)
			for i := 0; i < nq; i++ {
				if r.intn(2) == 0 {
					// Plant a true substring so some queries match fully.
					s := r.intn(rlen - qlen)
					copy(qRaw[i*qlen:(i+1)*qlen], refRaw[s:s+qlen])
				} else {
					for j := 0; j < qlen; j++ {
						qRaw[i*qlen+j] = byte("ACGT"[r.intn(4)])
					}
				}
			}
			dRef := ctx.Malloc(rlen, "ref")
			_ = ctx.MemcpyHtoD(dRef, refRaw)
			dQ := ctx.Malloc(nq*qlen, "queries")
			_ = ctx.MemcpyHtoD(dQ, qRaw)
			dOut := ctx.Malloc(4*nq, "out")
			if _, err := ctx.LaunchKernel(prog, "mummer_match", sim.LaunchParams{
				Grid: sim.D1((nq + 127) / 128), Block: sim.D1(128),
				Args: []uint64{uint64(dRef), uint64(dQ), uint64(dOut),
					uint64(nq), uint64(qlen), uint64(rlen)},
			}); err != nil {
				return nil, err
			}
			got, err := ctx.ReadU32(dOut, nq)
			if err != nil {
				return nil, err
			}
			want := make([]uint32, nq)
			for i := 0; i < nq; i++ {
				best := 0
				for s := 0; s < rlen-qlen; s++ {
					m := 0
					for m < qlen && refRaw[s+m] == qRaw[i*qlen+m] {
						m++
					}
					if m > best {
						best = m
					}
				}
				want[i] = uint32(best)
			}
			res := &Result{Output: u32Bytes(got)}
			res.VerifyErr = compareU32(got, want, "mummer")
			res.Stdout = fmt.Sprintf("mummer nq=%d checksum=%08x\n", nq, checksum(res.Output))
			return res, nil
		},
	}
}

// ludSpec is Rodinia lud's right-looking update: per pivot k, scale the
// pivot column then rank-1 update the trailing submatrix.
func ludSpec() *Spec {
	return &Spec{
		Name:      "rodinia.lud",
		OutputTol: 5e-2,
		Datasets:  []string{"small"},
		Build: func() (*ptx.Module, error) {
			m := ptx.NewModule()

			b := ptx.NewKernel("lud_scale")
			a := b.ParamU64("a")
			n := b.ParamU32("n")
			k := b.ParamU32("k")
			i := b.Add(b.GlobalTidX(), b.AddI(k, 1))
			b.If(b.Setp(sass.CmpLT, i, n), func() {
				piv := b.LdGlobalF32(b.Index(a, b.Mad(k, n, k), 2), 0)
				idx := b.Mad(i, n, k)
				v := b.LdGlobalF32(b.Index(a, idx, 2), 0)
				b.StGlobalF32(b.Index(a, idx, 2), 0, b.Mul(v, b.Rcp(piv)))
			})
			f1, err := b.Done()
			if err != nil {
				return nil, err
			}
			m.Add(f1)

			b2 := ptx.NewKernel("lud_update")
			a2 := b2.ParamU64("a")
			n2 := b2.ParamU32("n")
			k2 := b2.ParamU32("k")
			i2 := b2.Add(b2.GlobalTidX(), b2.AddI(k2, 1))
			j2 := b2.Add(b2.CtaY(), b2.AddI(k2, 1))
			b2.If(b2.PAnd(b2.Setp(sass.CmpLT, i2, n2), b2.Setp(sass.CmpLT, j2, n2)), func() {
				lik := b2.LdGlobalF32(b2.Index(a2, b2.Mad(i2, n2, k2), 2), 0)
				ukj := b2.LdGlobalF32(b2.Index(a2, b2.Mad(k2, n2, j2), 2), 0)
				idx := b2.Mad(i2, n2, j2)
				v := b2.LdGlobalF32(b2.Index(a2, idx, 2), 0)
				b2.StGlobalF32(b2.Index(a2, idx, 2), 0, b2.Sub(v, b2.Mul(lik, ukj)))
			})
			f2, err := b2.Done()
			if err != nil {
				return nil, err
			}
			m.Add(f2)
			return m, nil
		},
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			const n = 20
			r := newRNG(231)
			mat := make([]float32, n*n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					mat[i*n+j] = r.f32() - 0.5
				}
				mat[i*n+i] = float32(n)
			}
			ref := append([]float32(nil), mat...)
			dA := ctx.AllocF32("a", mat)
			for k := 0; k < n-1; k++ {
				rows := n - k - 1
				if _, err := ctx.LaunchKernel(prog, "lud_scale", sim.LaunchParams{
					Grid: sim.D1((rows + 63) / 64), Block: sim.D1(64),
					Args: []uint64{uint64(dA), uint64(n), uint64(k)},
				}); err != nil {
					return nil, err
				}
				if _, err := ctx.LaunchKernel(prog, "lud_update", sim.LaunchParams{
					Grid: sim.Dim3{X: (rows + 63) / 64, Y: rows, Z: 1}, Block: sim.D1(64),
					Args: []uint64{uint64(dA), uint64(n), uint64(k)},
				}); err != nil {
					return nil, err
				}
			}
			got, err := ctx.ReadF32(dA, n*n)
			if err != nil {
				return nil, err
			}
			for k := 0; k < n-1; k++ {
				piv := ref[k*n+k]
				for i := k + 1; i < n; i++ {
					ref[i*n+k] = ref[i*n+k] * (1 / piv)
				}
				for i := k + 1; i < n; i++ {
					for j := k + 1; j < n; j++ {
						ref[i*n+j] -= ref[i*n+k] * ref[k*n+j]
					}
				}
			}
			res := &Result{Output: f32Bytes(got)}
			res.VerifyErr = compareF32(got, ref, 5e-2, "lud")
			res.Stdout = fmt.Sprintf("lud n=%d %s\n", n, f32Summary(res.Output))
			return res, nil
		},
	}
}
