package workloads_test

import (
	"os"
	"strings"
	"testing"
	"time"

	"sassi/internal/cuda"
	"sassi/internal/ptxas"
	"sassi/internal/sim"
	"sassi/internal/workloads"
)

// engineWall times one end-to-end workload run (best of reps) on the
// given engine with sequential SM dispatch, so the ratio is pure
// single-thread efficiency.
func engineWall(t *testing.T, name, dataset string, engine sim.Engine, reps int) float64 {
	t.Helper()
	spec, ok := workloads.Get(name)
	if !ok {
		t.Fatalf("workload %s not registered", name)
	}
	prog, err := spec.Compile(ptxas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.KeplerK10()
	cfg.SequentialSMs = true
	cfg.Engine = engine
	best := 1e18
	for i := 0; i < reps; i++ {
		ctx := cuda.NewContext(cfg)
		start := time.Now()
		if _, err := spec.Run(ctx, prog, dataset); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start).Seconds(); d < best {
			best = d
		}
	}
	return best
}

// TestPredecodedSpeedupFloor is the CI bench-regression smoke: the
// predecoded engine must stay at least 2x faster than the reference
// interpreter on parboil.cutcp end to end. cutcp measures 2.5-3.3x on the
// single-core reference host (see EXPERIMENTS.md for the full Parboil
// table), so the 2x floor trips on a real engine regression while leaving
// headroom for shared-runner noise. Wall-clock gates are inherently
// environment-sensitive, so the test is opt-in via SASSI_BENCH_GATE=1 —
// CI sets it; plain `go test` skips.
func TestPredecodedSpeedupFloor(t *testing.T) {
	if os.Getenv("SASSI_BENCH_GATE") == "" {
		t.Skip("set SASSI_BENCH_GATE=1 to run the wall-clock regression gate")
	}
	const workload = "parboil.cutcp"
	const floor = 2.0
	classic := engineWall(t, workload, "default", sim.EngineConcurrent, 3)
	pre := engineWall(t, workload, "default", sim.EnginePredecoded, 3)
	ratio := classic / pre
	t.Logf("%s: interpreter %.2fms, predecoded %.2fms, speedup %.2fx (floor %.1fx)",
		workload, classic*1e3, pre*1e3, ratio, floor)
	if ratio < floor {
		t.Errorf("predecoded engine speedup %.2fx below the %.1fx regression floor on %s",
			ratio, floor, workload)
	}
}

// TestEngineSpeedSweep logs the per-workload interpreter-vs-predecoded
// wall-clock table over the Parboil suite — the source of EXPERIMENTS.md's
// speedup table. Opt-in like the gate: it exists to re-measure, not to
// assert.
func TestEngineSpeedSweep(t *testing.T) {
	if os.Getenv("SASSI_BENCH_GATE") == "" {
		t.Skip("set SASSI_BENCH_GATE=1 to run the engine speed sweep")
	}
	for _, spec := range workloads.All() {
		if !strings.HasPrefix(spec.Name, "parboil.") {
			continue
		}
		classic := engineWall(t, spec.Name, "default", sim.EngineConcurrent, 2)
		pre := engineWall(t, spec.Name, "default", sim.EnginePredecoded, 2)
		t.Logf("%-22s interpreter %8.2fms  predecoded %8.2fms  speedup %.2fx",
			spec.Name, classic*1e3, pre*1e3, classic/pre)
	}
}
