package workloads

import (
	"fmt"

	"sassi/internal/cuda"
	"sassi/internal/ptx"
	"sassi/internal/sass"
	"sassi/internal/sim"
)

func init() {
	register(gaussianSpec())
	register(streamclusterSpec())
	register(sradSpec("rodinia.srad_v1", 1))
	register(sradSpec("rodinia.srad_v2", 2))
	register(heartwallSpec())
}

// gaussianSpec is Rodinia gaussian: forward elimination with one Fan1/Fan2
// kernel pair per pivot — many tiny launches (the paper reports 2052) and
// mild divergence from the i>t guards.
func gaussianSpec() *Spec {
	return &Spec{
		Name:      "rodinia.gaussian",
		OutputTol: 5e-2,
		Datasets:  []string{"small"},
		Build: func() (*ptx.Module, error) {
			m := ptx.NewModule()

			// Fan1: m[i] = a[i*ncols+t] / a[t*ncols+t] for i in (t, n).
			b := ptx.NewKernel("fan1")
			a := b.ParamU64("a")
			mul := b.ParamU64("m")
			n := b.ParamU32("n")
			ncols1 := b.ParamU32("ncols")
			t := b.ParamU32("t")
			i := b.Add(b.GlobalTidX(), b.AddI(t, 1))
			b.If(b.Setp(sass.CmpLT, i, n), func() {
				num := b.LdGlobalF32(b.Index(a, b.Mad(i, ncols1, t), 2), 0)
				den := b.LdGlobalF32(b.Index(a, b.Mad(t, ncols1, t), 2), 0)
				b.StGlobalF32(b.Index(mul, i, 2), 0, b.Mul(num, b.Rcp(den)))
			})
			f1, err := b.Done()
			if err != nil {
				return nil, err
			}
			m.Add(f1)

			// Fan2: a[i*n+j] -= m[i]*a[t*n+j]; also updates b-vector as
			// column n (augmented matrix).
			b2 := ptx.NewKernel("fan2")
			a2 := b2.ParamU64("a")
			mul2 := b2.ParamU64("m")
			n2 := b2.ParamU32("n")
			ncols := b2.ParamU32("ncols")
			t2 := b2.ParamU32("t")
			i2 := b2.Add(b2.GlobalTidX(), b2.AddI(t2, 1))
			j2 := b2.CtaY() // blocks are 1 column high in y
			inI := b2.Setp(sass.CmpLT, i2, n2)
			inJ := b2.Setp(sass.CmpLT, j2, ncols)
			b2.If(b2.PAnd(inI, inJ), func() {
				mi := b2.LdGlobalF32(b2.Index(mul2, i2, 2), 0)
				atj := b2.LdGlobalF32(b2.Index(a2, b2.Mad(t2, ncols, j2), 2), 0)
				idx := b2.Mad(i2, ncols, j2)
				aij := b2.LdGlobalF32(b2.Index(a2, idx, 2), 0)
				b2.StGlobalF32(b2.Index(a2, idx, 2), 0, b2.Sub(aij, b2.Mul(mi, atj)))
			})
			f2, err := b2.Done()
			if err != nil {
				return nil, err
			}
			m.Add(f2)
			return m, nil
		},
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			const n = 24
			ncols := uint32(n + 1)
			r := newRNG(91)
			// Diagonally dominant augmented matrix [A|b].
			aug := make([]float32, n*int(ncols))
			for i := 0; i < n; i++ {
				for j := 0; j <= n; j++ {
					aug[i*int(ncols)+j] = r.f32() - 0.5
				}
				aug[i*int(ncols)+i] = float32(n)
			}
			ref := make([]float32, len(aug))
			copy(ref, aug)

			dA := ctx.AllocF32("aug", aug)
			dM := ctx.Malloc(4*n, "mult")
			for t := 0; t < n-1; t++ {
				rows := n - t - 1
				if _, err := ctx.LaunchKernel(prog, "fan1", sim.LaunchParams{
					Grid: sim.D1((rows + 63) / 64), Block: sim.D1(64),
					Args: []uint64{uint64(dA), uint64(dM), uint64(n), uint64(ncols), uint64(t)},
				}); err != nil {
					return nil, err
				}
				if _, err := ctx.LaunchKernel(prog, "fan2", sim.LaunchParams{
					Grid: sim.Dim3{X: (rows + 63) / 64, Y: int(ncols), Z: 1}, Block: sim.D1(64),
					Args: []uint64{uint64(dA), uint64(dM), uint64(n), uint64(ncols), uint64(t)},
				}); err != nil {
					return nil, err
				}
			}
			got, err := ctx.ReadF32(dA, len(aug))
			if err != nil {
				return nil, err
			}
			// CPU forward elimination mirroring the kernel arithmetic
			// (rcp-based division).
			for t := 0; t < n-1; t++ {
				den := ref[t*int(ncols)+t]
				for i := t + 1; i < n; i++ {
					mi := ref[i*int(ncols)+t] * (1 / den)
					for j := 0; j < int(ncols); j++ {
						ref[i*int(ncols)+j] -= mi * ref[t*int(ncols)+j]
					}
				}
			}
			res := &Result{Output: f32Bytes(got)}
			res.VerifyErr = compareF32(got, ref, 5e-2, "gaussian")
			res.Stdout = fmt.Sprintf("gaussian n=%d launches=%d %s\n",
				n, ctx.Launches(), f32Summary(res.Output))
			return res, nil
		},
	}
}

// streamclusterSpec is Rodinia streamcluster's distance phase: for each
// point, compute the cost to every candidate center and keep the minimum.
// Branch-free inner loop (Sel-based min) — fully convergent, matching the
// paper's 0% divergence row.
func streamclusterSpec() *Spec {
	return &Spec{
		Name:     "rodinia.streamcluster",
		Datasets: []string{"small"},
		Build: func() (*ptx.Module, error) {
			b := ptx.NewKernel("sc_dist")
			pts := b.ParamU64("pts") // n x dim
			ctrs := b.ParamU64("ctrs")
			assign := b.ParamU64("assign")
			mind := b.ParamU64("mind")
			n := b.ParamU32("n")
			k := b.ParamU32("k")
			dim := b.ParamU32("dim")
			i := b.GlobalTidX()
			b.If(b.Setp(sass.CmpLT, i, n), func() {
				best := b.Var(b.ImmF32(1e30))
				bestK := b.Var(b.ImmU32(0))
				c := b.Var(b.ImmU32(0))
				b.While(func() ptx.Value { return b.Setp(sass.CmpLT, c, k) }, func() {
					sum := b.Var(b.ImmF32(0))
					d := b.Var(b.ImmU32(0))
					b.While(func() ptx.Value { return b.Setp(sass.CmpLT, d, dim) }, func() {
						pv := b.LdGlobalF32(b.Index(pts, b.Mad(i, dim, d), 2), 0)
						cv := b.LdGlobalF32(b.Index(ctrs, b.Mad(c, dim, d), 2), 0)
						diff := b.Sub(pv, cv)
						b.Assign(sum, b.Fma(diff, diff, sum))
						b.Assign(d, b.AddI(d, 1))
					})
					isBetter := b.Setp(sass.CmpLT, sum, best)
					b.Assign(best, b.Sel(isBetter, sum, best))
					b.Assign(bestK, b.Sel(isBetter, c, bestK))
					b.Assign(c, b.AddI(c, 1))
				})
				b.StGlobalU32(b.Index(assign, i, 2), 0, bestK)
				b.StGlobalF32(b.Index(mind, i, 2), 0, best)
			})
			f, err := b.Done()
			if err != nil {
				return nil, err
			}
			m := ptx.NewModule()
			m.Add(f)
			return m, nil
		},
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			const n, k, dim = 768, 8, 8
			r := newRNG(111)
			pts := r.f32s(n*dim, 0, 1)
			ctrs := r.f32s(k*dim, 0, 1)
			dPts := ctx.AllocF32("pts", pts)
			dCtr := ctx.AllocF32("ctrs", ctrs)
			dAsn := ctx.Malloc(4*n, "assign")
			dMin := ctx.Malloc(4*n, "mind")
			if _, err := ctx.LaunchKernel(prog, "sc_dist", sim.LaunchParams{
				Grid: sim.D1((n + 127) / 128), Block: sim.D1(128),
				Args: []uint64{uint64(dPts), uint64(dCtr), uint64(dAsn), uint64(dMin),
					uint64(n), uint64(k), uint64(dim)},
			}); err != nil {
				return nil, err
			}
			got, err := ctx.ReadU32(dAsn, n)
			if err != nil {
				return nil, err
			}
			want := make([]uint32, n)
			for i := 0; i < n; i++ {
				best := float32(1e30)
				for c := 0; c < k; c++ {
					var sum float32
					for d := 0; d < dim; d++ {
						diff := pts[i*dim+d] - ctrs[c*dim+d]
						sum = diff*diff + sum
					}
					if sum < best {
						best = sum
						want[i] = uint32(c)
					}
				}
			}
			res := &Result{Output: u32Bytes(got)}
			res.VerifyErr = compareU32(got, want, "streamcluster assign")
			res.Stdout = fmt.Sprintf("streamcluster n=%d k=%d checksum=%08x\n", n, k, checksum(res.Output))
			return res, nil
		},
	}
}

// sradSpec is Rodinia srad: anisotropic diffusion on an image. Variant 1
// clamps boundary neighbors with Sel (almost no divergence); variant 2
// handles boundaries with nested Ifs (divergent at every image edge) —
// reproducing the paper's srad_v1 vs srad_v2 contrast.
func sradSpec(name string, variant int) *Spec {
	return &Spec{
		Name:      name,
		Datasets:  []string{"small"},
		OutputTol: 1e-3,
		Build: func() (*ptx.Module, error) {
			b := ptx.NewKernel("srad")
			img := b.ParamU64("img")
			out := b.ParamU64("out")
			w := b.ParamU32("w")
			h := b.ParamU32("h")
			lam := b.ParamF32("lambda")
			x := b.GlobalTidX()
			y := b.CtaY()
			inRange := b.PAnd(b.Setp(sass.CmpLT, x, w), b.Setp(sass.CmpLT, y, h))
			b.If(inRange, func() {
				idx := b.Mad(y, w, x)
				c := b.LdGlobalF32(b.Index(img, idx, 2), 0)
				var nv, sv, wv, ev ptx.Value
				if variant == 1 {
					// Clamped neighbor indices, branch-free.
					ym1 := b.Sel(b.SetpI(sass.CmpGT, y, 0), b.SubI(y, 1), y)
					yp1 := b.Sel(b.Setp(sass.CmpLT, b.AddI(y, 1), h), b.AddI(y, 1), y)
					xm1 := b.Sel(b.SetpI(sass.CmpGT, x, 0), b.SubI(x, 1), x)
					xp1 := b.Sel(b.Setp(sass.CmpLT, b.AddI(x, 1), w), b.AddI(x, 1), x)
					nv = b.LdGlobalF32(b.Index(img, b.Mad(ym1, w, x), 2), 0)
					sv = b.LdGlobalF32(b.Index(img, b.Mad(yp1, w, x), 2), 0)
					wv = b.LdGlobalF32(b.Index(img, b.Mad(y, w, xm1), 2), 0)
					ev = b.LdGlobalF32(b.Index(img, b.Mad(y, w, xp1), 2), 0)
				} else {
					// Divergent boundary handling: each branch body
					// recomputes the neighbor's 2-D index from scratch, as
					// the naive implementation does — large enough that the
					// backend keeps the branches instead of predicating
					// them, reproducing the paper's srad_v2 divergence.
					nvv := b.Var(c)
					svv := b.Var(c)
					wvv := b.Var(c)
					evv := b.Var(c)
					b.If(b.SetpI(sass.CmpGT, y, 0), func() {
						b.Assign(nvv, b.LdGlobalF32(b.Index(img, b.Mad(b.SubI(y, 1), w, x), 2), 0))
					})
					b.If(b.Setp(sass.CmpLT, b.AddI(y, 1), h), func() {
						b.Assign(svv, b.LdGlobalF32(b.Index(img, b.Mad(b.AddI(y, 1), w, x), 2), 0))
					})
					b.If(b.SetpI(sass.CmpGT, x, 0), func() {
						b.Assign(wvv, b.LdGlobalF32(b.Index(img, b.Mad(y, w, b.SubI(x, 1)), 2), 0))
					})
					b.If(b.Setp(sass.CmpLT, b.AddI(x, 1), w), func() {
						b.Assign(evv, b.LdGlobalF32(b.Index(img, b.Mad(y, w, b.AddI(x, 1)), 2), 0))
					})
					nv, sv, wv, ev = nvv, svv, wvv, evv
				}
				// Diffusion update: c + lambda/4 * laplacian.
				lap := b.Sub(b.Add(b.Add(nv, sv), b.Add(wv, ev)), b.Mul(c, b.ImmF32(4)))
				b.StGlobalF32(b.Index(out, idx, 2), 0, b.Fma(lap, b.Mul(lam, b.ImmF32(0.25)), c))
			})
			f, err := b.Done()
			if err != nil {
				return nil, err
			}
			m := ptx.NewModule()
			m.Add(f)
			return m, nil
		},
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			const w, h = 64, 48
			lam := float32(0.5)
			r := newRNG(121)
			img := r.f32s(w*h, 0, 1)
			dImg := ctx.AllocF32("img", img)
			dOut := ctx.Malloc(4*w*h, "out")
			if _, err := ctx.LaunchKernel(prog, "srad", sim.LaunchParams{
				Grid: sim.Dim3{X: (w + 63) / 64, Y: h, Z: 1}, Block: sim.D1(64),
				Args: []uint64{uint64(dImg), uint64(dOut), uint64(w), uint64(h),
					uint64(f32bitsOf(lam))},
			}); err != nil {
				return nil, err
			}
			got, err := ctx.ReadF32(dOut, w*h)
			if err != nil {
				return nil, err
			}
			want := make([]float32, w*h)
			at := func(x, y int) float32 {
				if x < 0 {
					x = 0
				}
				if x >= w {
					x = w - 1
				}
				if y < 0 {
					y = 0
				}
				if y >= h {
					y = h - 1
				}
				return img[y*w+x]
			}
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					c := img[y*w+x]
					lap := (at(x, y-1) + at(x, y+1)) + (at(x-1, y) + at(x+1, y)) - c*4
					want[y*w+x] = lap*(lam*0.25) + c
				}
			}
			res := &Result{Output: f32Bytes(got)}
			res.VerifyErr = compareF32(got, want, 1e-4, "srad")
			res.Stdout = fmt.Sprintf("srad v%d %dx%d %s\n", variant, w, h, f32Summary(res.Output))
			return res, nil
		},
	}
}

// heartwallSpec approximates Rodinia heartwall's tracking loop: per-thread
// work lists of widely varying length with data-dependent inner branches —
// the most divergent code in the paper's Table 1.
func heartwallSpec() *Spec {
	return &Spec{
		Name:      "rodinia.heartwall",
		OutputTol: 1e-3,
		Datasets:  []string{"small", "medium"},
		Build: func() (*ptx.Module, error) {
			b := ptx.NewKernel("heartwall")
			work := b.ParamU64("work") // per-thread iteration counts
			data := b.ParamU64("data")
			out := b.ParamU64("out")
			n := b.ParamU32("n")
			dlen := b.ParamU32("dlen")
			i := b.GlobalTidX()
			b.If(b.Setp(sass.CmpLT, i, n), func() {
				iters := b.LdGlobalU32(b.Index(work, i, 2), 0)
				acc := b.Var(b.ImmF32(0))
				j := b.Var(b.ImmU32(0))
				b.While(func() ptx.Value { return b.Setp(sass.CmpLT, j, iters) }, func() {
					// Gather a data-dependent sample.
					h := b.AndI(b.Mad(j, b.ImmU32(2654435761), i), 0x7fffffff)
					idx := b.Var(h)
					// idx %= dlen via repeated conditional subtract is too
					// slow; use masked index assuming dlen is a power of 2.
					b.Assign(idx, b.And(idx, b.SubI(dlen, 1)))
					v := b.LdGlobalF32(b.Index(data, idx, 2), 0)
					// Data-dependent branch inside the divergent loop.
					b.IfElse(b.Setp(sass.CmpGT, v, b.ImmF32(0.5)), func() {
						b.Assign(acc, b.Fma(v, v, acc))
					}, func() {
						b.Assign(acc, b.Add(acc, v))
					})
					b.Assign(j, b.AddI(j, 1))
				})
				b.StGlobalF32(b.Index(out, i, 2), 0, acc)
			})
			f, err := b.Done()
			if err != nil {
				return nil, err
			}
			m := ptx.NewModule()
			m.Add(f)
			return m, nil
		},
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			const dlen = 1024
			n := 1024
			if dataset == "medium" {
				n = 2048
			}
			r := newRNG(131)
			work := make([]uint32, n)
			for i := range work {
				// Long-tailed distribution: most threads do little, a few
				// do a lot — maximal intra-warp imbalance.
				v := r.intn(64)
				work[i] = uint32(v * v / 64)
			}
			data := r.f32s(dlen, 0, 1)
			dWork := ctx.AllocU32("work", work)
			dData := ctx.AllocF32("data", data)
			dOut := ctx.Malloc(uint64(4*n), "out")
			if _, err := ctx.LaunchKernel(prog, "heartwall", sim.LaunchParams{
				Grid: sim.D1((n + 127) / 128), Block: sim.D1(128),
				Args: []uint64{uint64(dWork), uint64(dData), uint64(dOut),
					uint64(n), uint64(dlen)},
			}); err != nil {
				return nil, err
			}
			got, err := ctx.ReadF32(dOut, n)
			if err != nil {
				return nil, err
			}
			want := make([]float32, n)
			for i := 0; i < n; i++ {
				var acc float32
				for j := uint32(0); j < work[i]; j++ {
					h := (j*2654435761 + uint32(i)) & 0x7fffffff
					v := data[h&(dlen-1)]
					if v > 0.5 {
						acc = v*v + acc
					} else {
						acc += v
					}
				}
				want[i] = acc
			}
			res := &Result{Output: f32Bytes(got)}
			res.VerifyErr = compareF32(got, want, 1e-4, "heartwall")
			res.Stdout = fmt.Sprintf("heartwall n=%d %s\n", n, f32Summary(res.Output))
			return res, nil
		},
	}
}
