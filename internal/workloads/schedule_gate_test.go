package workloads_test

import (
	"strings"
	"testing"

	"sassi/internal/analysis"
	"sassi/internal/cuda"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	"sassi/internal/sim"
	"sassi/internal/workloads"
)

// shortGateSet is the representative subset run under -short (CI runs the
// full sweep explicitly).
var shortGateSet = map[string]bool{
	"parboil.sgemm": true, "parboil.bfs": true, "parboil.stencil": true,
}

// runOnce compiles (optionally scheduling) and runs a workload on its
// default dataset.
func runOnce(t *testing.T, spec *workloads.Spec, schedule bool) *workloads.Result {
	t.Helper()
	opts := ptxas.Options{Schedule: schedule}
	prog, err := spec.Compile(opts)
	if err != nil {
		t.Fatal(err)
	}
	if schedule && !anyScheduled(prog) {
		// SASS-authored programs bypass CompileFunc: schedule them here and
		// re-certify through the verifier (the `schedule` check included).
		for _, k := range prog.Kernels {
			ptxas.ScheduleKernel(k, 0)
		}
		if diags := analysis.Verify(prog); analysis.HasErrors(diags) {
			t.Fatalf("scheduled authored SASS failed verification: %v",
				&analysis.VerifyError{Diags: diags})
		}
	}
	ctx := cuda.NewContext(sim.MiniGPU())
	res, err := spec.Run(ctx, prog, spec.DefaultDataset())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func anyScheduled(prog *sass.Program) bool {
	for _, k := range prog.Kernels {
		if k.SchedOrig != nil {
			return true
		}
	}
	return false
}

// TestScheduleBitEqual is the workload-level soundness gate for the
// instruction scheduler: every built-in workload, compiled with the
// post-RA list scheduler (which the `schedule` verifier check certifies
// inside Compile under go test), must produce bit-identical output and
// stdout to its unscheduled build, and still verify against its CPU
// reference. Deliberately-buggy mutants are excluded — their contract is
// to fail downstream checkers, not to verify.
func TestScheduleBitEqual(t *testing.T) {
	for _, spec := range workloads.All() {
		if strings.HasPrefix(spec.Name, "mutant.") {
			continue
		}
		if testing.Short() && !shortGateSet[spec.Name] {
			continue
		}
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			base := runOnce(t, spec, false)
			sched := runOnce(t, spec, true)
			if base.VerifyErr != nil {
				t.Fatalf("unscheduled run failed verify: %v", base.VerifyErr)
			}
			if sched.VerifyErr != nil {
				t.Fatalf("scheduled run failed verify: %v", sched.VerifyErr)
			}
			if len(base.Output) != len(sched.Output) {
				t.Fatalf("output size %d vs %d", len(base.Output), len(sched.Output))
			}
			for i := range base.Output {
				if base.Output[i] != sched.Output[i] {
					t.Fatalf("output byte %d differs: %#x vs %#x (bit-equality, not tolerance, is the schedule contract)",
						i, base.Output[i], sched.Output[i])
				}
			}
			if base.Stdout != sched.Stdout {
				t.Fatalf("stdout diverges:\n--- base ---\n%s\n--- sched ---\n%s",
					base.Stdout, sched.Stdout)
			}
		})
	}
}
