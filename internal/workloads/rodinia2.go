package workloads

import (
	"fmt"
	"math"

	"sassi/internal/cuda"
	"sassi/internal/ptx"
	"sassi/internal/sass"
	"sassi/internal/sim"
)

func init() {
	register(hotspotSpec())
	register(pathfinderSpec())
	register(kmeansSpec())
	register(nnSpec())
	register(backpropSpec())
}

// hotspotSpec is Rodinia hotspot: the thermal update
// T' = T + cap*(neighbors - 4T + power), boundary-clamped, iterated twice
// with buffer swapping.
func hotspotSpec() *Spec {
	return &Spec{
		Name:      "rodinia.hotspot",
		OutputTol: 1e-2,
		Datasets:  []string{"small"},
		Build: func() (*ptx.Module, error) {
			b := ptx.NewKernel("hotspot")
			temp := b.ParamU64("temp")
			power := b.ParamU64("power")
			out := b.ParamU64("out")
			w := b.ParamU32("w")
			h := b.ParamU32("h")
			cap := b.ParamF32("cap")
			x := b.GlobalTidX()
			y := b.CtaY()
			b.If(b.PAnd(b.Setp(sass.CmpLT, x, w), b.Setp(sass.CmpLT, y, h)), func() {
				idx := b.Mad(y, w, x)
				t := b.LdGlobalF32(b.Index(temp, idx, 2), 0)
				ym1 := b.Sel(b.SetpI(sass.CmpGT, y, 0), b.SubI(y, 1), y)
				yp1 := b.Sel(b.Setp(sass.CmpLT, b.AddI(y, 1), h), b.AddI(y, 1), y)
				xm1 := b.Sel(b.SetpI(sass.CmpGT, x, 0), b.SubI(x, 1), x)
				xp1 := b.Sel(b.Setp(sass.CmpLT, b.AddI(x, 1), w), b.AddI(x, 1), x)
				n := b.LdGlobalF32(b.Index(temp, b.Mad(ym1, w, x), 2), 0)
				s := b.LdGlobalF32(b.Index(temp, b.Mad(yp1, w, x), 2), 0)
				wv := b.LdGlobalF32(b.Index(temp, b.Mad(y, w, xm1), 2), 0)
				e := b.LdGlobalF32(b.Index(temp, b.Mad(y, w, xp1), 2), 0)
				p := b.LdGlobalF32(b.Index(power, idx, 2), 0)
				delta := b.Add(b.Sub(b.Add(b.Add(n, s), b.Add(wv, e)), b.Mul(t, b.ImmF32(4))), p)
				b.StGlobalF32(b.Index(out, idx, 2), 0, b.Fma(delta, cap, t))
			})
			f, err := b.Done()
			if err != nil {
				return nil, err
			}
			m := ptx.NewModule()
			m.Add(f)
			return m, nil
		},
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			const w, h, steps = 64, 32, 2
			capv := float32(0.05)
			r := newRNG(141)
			temp := r.f32s(w*h, 320, 340)
			power := r.f32s(w*h, 0, 1)
			bufs := [2]cuda.DevPtr{ctx.AllocF32("tempA", temp), ctx.Malloc(4*w*h, "tempB")}
			dPow := ctx.AllocF32("power", power)
			for s := 0; s < steps; s++ {
				if _, err := ctx.LaunchKernel(prog, "hotspot", sim.LaunchParams{
					Grid: sim.Dim3{X: (w + 63) / 64, Y: h, Z: 1}, Block: sim.D1(64),
					Args: []uint64{uint64(bufs[s%2]), uint64(dPow), uint64(bufs[(s+1)%2]),
						uint64(w), uint64(h), uint64(f32bitsOf(capv))},
				}); err != nil {
					return nil, err
				}
			}
			got, err := ctx.ReadF32(bufs[steps%2], w*h)
			if err != nil {
				return nil, err
			}
			ref := make([]float32, w*h)
			nxt := make([]float32, w*h)
			copy(ref, temp)
			clamp := func(v, lo, hi int) int {
				if v < lo {
					return lo
				}
				if v > hi {
					return hi
				}
				return v
			}
			for s := 0; s < steps; s++ {
				for y := 0; y < h; y++ {
					for x := 0; x < w; x++ {
						t := ref[y*w+x]
						n := ref[clamp(y-1, 0, h-1)*w+x]
						ss := ref[clamp(y+1, 0, h-1)*w+x]
						wv := ref[y*w+clamp(x-1, 0, w-1)]
						e := ref[y*w+clamp(x+1, 0, w-1)]
						delta := (n + ss) + (wv + e) - t*4 + power[y*w+x]
						nxt[y*w+x] = delta*capv + t
					}
				}
				ref, nxt = nxt, ref
			}
			res := &Result{Output: f32Bytes(got)}
			res.VerifyErr = compareF32(got, ref, 1e-3, "hotspot")
			res.Stdout = fmt.Sprintf("hotspot %dx%d steps=%d %s\n", w, h, steps, f32Summary(res.Output))
			return res, nil
		},
	}
}

// pathfinderSpec is Rodinia pathfinder: dynamic programming over grid rows,
// next[i] = data[i] + min(prev[i-1], prev[i], prev[i+1]).
func pathfinderSpec() *Spec {
	return &Spec{
		Name:     "rodinia.pathfinder",
		Datasets: []string{"small"},
		Build: func() (*ptx.Module, error) {
			b := ptx.NewKernel("pathfinder")
			prev := b.ParamU64("prev")
			data := b.ParamU64("data")
			next := b.ParamU64("next")
			n := b.ParamU32("n")
			i := b.GlobalTidX()
			b.If(b.Setp(sass.CmpLT, i, n), func() {
				c := b.LdGlobalU32(b.Index(prev, i, 2), 0)
				left := b.Var(c)
				right := b.Var(c)
				b.If(b.SetpI(sass.CmpGT, i, 0), func() {
					b.Assign(left, b.LdGlobalU32(b.Index(prev, b.SubI(i, 1), 2), 0))
				})
				b.If(b.Setp(sass.CmpLT, b.AddI(i, 1), n), func() {
					b.Assign(right, b.LdGlobalU32(b.Index(prev, b.AddI(i, 1), 2), 0))
				})
				best := b.Min(c, b.Min(left, right))
				d := b.LdGlobalU32(b.Index(data, i, 2), 0)
				b.StGlobalU32(b.Index(next, i, 2), 0, b.Add(d, best))
			})
			f, err := b.Done()
			if err != nil {
				return nil, err
			}
			m := ptx.NewModule()
			m.Add(f)
			return m, nil
		},
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			const cols, rows = 1024, 8
			r := newRNG(151)
			grid := make([][]uint32, rows)
			for i := range grid {
				grid[i] = make([]uint32, cols)
				for j := range grid[i] {
					grid[i][j] = uint32(r.intn(10))
				}
			}
			bufs := [2]cuda.DevPtr{ctx.AllocU32("prev", grid[0]), ctx.Malloc(4*cols, "next")}
			for row := 1; row < rows; row++ {
				dData := ctx.AllocU32(fmt.Sprintf("row%d", row), grid[row])
				if _, err := ctx.LaunchKernel(prog, "pathfinder", sim.LaunchParams{
					Grid: sim.D1((cols + 127) / 128), Block: sim.D1(128),
					Args: []uint64{uint64(bufs[(row+1)%2]), uint64(dData), uint64(bufs[row%2]),
						uint64(cols)},
				}); err != nil {
					return nil, err
				}
			}
			got, err := ctx.ReadU32(bufs[(rows-1)%2], cols)
			if err != nil {
				return nil, err
			}
			prev := append([]uint32(nil), grid[0]...)
			next := make([]uint32, cols)
			for row := 1; row < rows; row++ {
				for i := 0; i < cols; i++ {
					best := prev[i]
					if i > 0 && prev[i-1] < best {
						best = prev[i-1]
					}
					if i+1 < cols && prev[i+1] < best {
						best = prev[i+1]
					}
					next[i] = grid[row][i] + best
				}
				prev, next = next, prev
			}
			res := &Result{Output: u32Bytes(got)}
			res.VerifyErr = compareU32(got, prev, "pathfinder")
			res.Stdout = fmt.Sprintf("pathfinder %dx%d checksum=%08x\n", rows, cols, checksum(res.Output))
			return res, nil
		},
	}
}

// kmeansSpec is Rodinia kmeans' assignment step with per-cluster population
// counting via global atomics.
func kmeansSpec() *Spec {
	return &Spec{
		Name:     "rodinia.kmeans",
		Datasets: []string{"small"},
		Build: func() (*ptx.Module, error) {
			b := ptx.NewKernel("kmeans_assign")
			pts := b.ParamU64("pts")
			ctrs := b.ParamU64("ctrs")
			member := b.ParamU64("member")
			counts := b.ParamU64("counts")
			n := b.ParamU32("n")
			k := b.ParamU32("k")
			dim := b.ParamU32("dim")
			i := b.GlobalTidX()
			b.If(b.Setp(sass.CmpLT, i, n), func() {
				best := b.Var(b.ImmF32(1e30))
				bestK := b.Var(b.ImmU32(0))
				c := b.Var(b.ImmU32(0))
				b.While(func() ptx.Value { return b.Setp(sass.CmpLT, c, k) }, func() {
					sum := b.Var(b.ImmF32(0))
					d := b.Var(b.ImmU32(0))
					b.While(func() ptx.Value { return b.Setp(sass.CmpLT, d, dim) }, func() {
						pv := b.LdGlobalF32(b.Index(pts, b.Mad(i, dim, d), 2), 0)
						cv := b.LdGlobalF32(b.Index(ctrs, b.Mad(c, dim, d), 2), 0)
						diff := b.Sub(pv, cv)
						b.Assign(sum, b.Fma(diff, diff, sum))
						b.Assign(d, b.AddI(d, 1))
					})
					better := b.Setp(sass.CmpLT, sum, best)
					b.Assign(best, b.Sel(better, sum, best))
					b.Assign(bestK, b.Sel(better, c, bestK))
					b.Assign(c, b.AddI(c, 1))
				})
				b.StGlobalU32(b.Index(member, i, 2), 0, bestK)
				b.AtomAddGlobal(b.Index(counts, bestK, 2), 0, b.ImmU32(1))
			})
			f, err := b.Done()
			if err != nil {
				return nil, err
			}
			m := ptx.NewModule()
			m.Add(f)
			return m, nil
		},
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			const n, k, dim = 512, 5, 4
			r := newRNG(161)
			pts := r.f32s(n*dim, 0, 1)
			ctrs := r.f32s(k*dim, 0, 1)
			dPts := ctx.AllocF32("pts", pts)
			dCtr := ctx.AllocF32("ctrs", ctrs)
			dMem := ctx.Malloc(4*n, "member")
			dCnt := ctx.AllocU32("counts", make([]uint32, k))
			if _, err := ctx.LaunchKernel(prog, "kmeans_assign", sim.LaunchParams{
				Grid: sim.D1((n + 127) / 128), Block: sim.D1(128),
				Args: []uint64{uint64(dPts), uint64(dCtr), uint64(dMem), uint64(dCnt),
					uint64(n), uint64(k), uint64(dim)},
			}); err != nil {
				return nil, err
			}
			got, err := ctx.ReadU32(dMem, n)
			if err != nil {
				return nil, err
			}
			gotCnt, err := ctx.ReadU32(dCnt, k)
			if err != nil {
				return nil, err
			}
			want := make([]uint32, n)
			wantCnt := make([]uint32, k)
			for i := 0; i < n; i++ {
				best := float32(1e30)
				for c := 0; c < k; c++ {
					var sum float32
					for d := 0; d < dim; d++ {
						diff := pts[i*dim+d] - ctrs[c*dim+d]
						sum = diff*diff + sum
					}
					if sum < best {
						best = sum
						want[i] = uint32(c)
					}
				}
				wantCnt[want[i]]++
			}
			res := &Result{Output: append(u32Bytes(got), u32Bytes(gotCnt)...)}
			if err := compareU32(got, want, "kmeans membership"); err != nil {
				res.VerifyErr = err
			} else {
				res.VerifyErr = compareU32(gotCnt, wantCnt, "kmeans counts")
			}
			res.Stdout = fmt.Sprintf("kmeans n=%d k=%d checksum=%08x\n", n, k, checksum(res.Output))
			return res, nil
		},
	}
}

// nnSpec is Rodinia nn: Euclidean distances from every record to a query
// point — one branch (the range guard), fully coalesced.
func nnSpec() *Spec {
	return &Spec{
		Name:      "rodinia.nn",
		OutputTol: 1e-2,
		Datasets:  []string{"small"},
		Build: func() (*ptx.Module, error) {
			b := ptx.NewKernel("nn")
			lat := b.ParamU64("lat")
			lng := b.ParamU64("lng")
			dist := b.ParamU64("dist")
			qlat := b.ParamF32("qlat")
			qlng := b.ParamF32("qlng")
			n := b.ParamU32("n")
			i := b.GlobalTidX()
			b.If(b.Setp(sass.CmpLT, i, n), func() {
				la := b.Sub(b.LdGlobalF32(b.Index(lat, i, 2), 0), qlat)
				lo := b.Sub(b.LdGlobalF32(b.Index(lng, i, 2), 0), qlng)
				b.StGlobalF32(b.Index(dist, i, 2), 0, b.Sqrt(b.Fma(la, la, b.Mul(lo, lo))))
			})
			f, err := b.Done()
			if err != nil {
				return nil, err
			}
			m := ptx.NewModule()
			m.Add(f)
			return m, nil
		},
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			const n = 2048
			r := newRNG(171)
			lat := r.f32s(n, 0, 90)
			lng := r.f32s(n, 0, 180)
			qlat, qlng := float32(45), float32(90)
			dLat := ctx.AllocF32("lat", lat)
			dLng := ctx.AllocF32("lng", lng)
			dDist := ctx.Malloc(4*n, "dist")
			if _, err := ctx.LaunchKernel(prog, "nn", sim.LaunchParams{
				Grid: sim.D1((n + 127) / 128), Block: sim.D1(128),
				Args: []uint64{uint64(dLat), uint64(dLng), uint64(dDist),
					uint64(f32bitsOf(qlat)), uint64(f32bitsOf(qlng)), uint64(n)},
			}); err != nil {
				return nil, err
			}
			got, err := ctx.ReadF32(dDist, n)
			if err != nil {
				return nil, err
			}
			want := make([]float32, n)
			for i := range want {
				la := float64(lat[i] - qlat)
				lo := float64(lng[i] - qlng)
				want[i] = float32(math.Sqrt(la*la + lo*lo))
			}
			res := &Result{Output: f32Bytes(got)}
			res.VerifyErr = compareF32(got, want, 1e-3, "nn")
			res.Stdout = fmt.Sprintf("nn n=%d %s\n", n, f32Summary(res.Output))
			return res, nil
		},
	}
}

// backpropSpec is Rodinia backprop's forward layer:
// hidden[j] = sigmoid(sum_i in[i]*w[i][j]), sigmoid via exp2.
func backpropSpec() *Spec {
	return &Spec{
		Name:      "rodinia.backprop",
		OutputTol: 2e-2,
		Datasets:  []string{"small"},
		Build: func() (*ptx.Module, error) {
			b := ptx.NewKernel("backprop_forward")
			in := b.ParamU64("in")
			w := b.ParamU64("w")
			hidden := b.ParamU64("hidden")
			nIn := b.ParamU32("nIn")
			nHid := b.ParamU32("nHid")
			j := b.GlobalTidX()
			b.If(b.Setp(sass.CmpLT, j, nHid), func() {
				sum := b.Var(b.ImmF32(0))
				i := b.Var(b.ImmU32(0))
				b.While(func() ptx.Value { return b.Setp(sass.CmpLT, i, nIn) }, func() {
					iv := b.LdGlobalF32(b.Index(in, i, 2), 0)
					wv := b.LdGlobalF32(b.Index(w, b.Mad(i, nHid, j), 2), 0)
					b.Assign(sum, b.Fma(iv, wv, sum))
					b.Assign(i, b.AddI(i, 1))
				})
				// sigmoid(x) = 1 / (1 + 2^(-x*log2(e)))
				e2 := b.Ex2(b.Mul(sum, b.ImmF32(-1.4426950408889634)))
				b.StGlobalF32(b.Index(hidden, j, 2), 0, b.Rcp(b.Add(e2, b.ImmF32(1))))
			})
			f, err := b.Done()
			if err != nil {
				return nil, err
			}
			m := ptx.NewModule()
			m.Add(f)
			return m, nil
		},
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			const nIn, nHid = 64, 256
			r := newRNG(181)
			in := r.f32s(nIn, -1, 1)
			w := r.f32s(nIn*nHid, -0.5, 0.5)
			dIn := ctx.AllocF32("in", in)
			dW := ctx.AllocF32("w", w)
			dHid := ctx.Malloc(4*nHid, "hidden")
			if _, err := ctx.LaunchKernel(prog, "backprop_forward", sim.LaunchParams{
				Grid: sim.D1((nHid + 127) / 128), Block: sim.D1(128),
				Args: []uint64{uint64(dIn), uint64(dW), uint64(dHid),
					uint64(nIn), uint64(nHid)},
			}); err != nil {
				return nil, err
			}
			got, err := ctx.ReadF32(dHid, nHid)
			if err != nil {
				return nil, err
			}
			want := make([]float32, nHid)
			for j := 0; j < nHid; j++ {
				var sum float64
				for i := 0; i < nIn; i++ {
					sum += float64(in[i]) * float64(w[i*nHid+j])
				}
				want[j] = float32(1 / (1 + math.Exp(-sum)))
			}
			res := &Result{Output: f32Bytes(got)}
			res.VerifyErr = compareF32(got, want, 2e-2, "backprop")
			res.Stdout = fmt.Sprintf("backprop %d->%d %s\n", nIn, nHid, f32Summary(res.Output))
			return res, nil
		},
	}
}
