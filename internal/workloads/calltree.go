package workloads

import (
	"fmt"

	"sassi/internal/cuda"
	"sassi/internal/sass"
	"sassi/internal/sim"
)

func init() { register(callTreeSpec()) }

// callTreeSpec is the CFI demo workload: a SASS-authored kernel with a real
// CAL/RET call tree (the PTX builder never emits one) plus SSY/SYNC
// divergence inside the callee, so every structure the CFI checker protects
// — call stack, return addresses, divergence stack — is exercised on a
// clean run. Per element: out[g] = (in[g]*2 + 5) + (g even ? 7 : 11).
func callTreeSpec() *Spec {
	return &Spec{
		Name:         "demo.calltree",
		Datasets:     []string{"small"},
		BuildProgram: buildCallTree,
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			const n = callTreeThreads * callTreeCTAs
			in := make([]uint32, n)
			for i := range in {
				in[i] = uint32(i*7 + 3)
			}
			din := ctx.AllocU32("in", in)
			dout := ctx.Malloc(4*n, "out")
			if _, err := ctx.LaunchKernel(prog, "calltree", sim.LaunchParams{
				Grid: sim.D1(callTreeCTAs), Block: sim.D1(callTreeThreads),
				Args: []uint64{uint64(din), uint64(dout)},
			}); err != nil {
				return nil, err
			}
			got, err := ctx.ReadU32(dout, n)
			if err != nil {
				return nil, err
			}
			want := make([]uint32, n)
			for g := range want {
				x := in[g]*2 + 5
				if g%2 == 0 {
					x += 7
				} else {
					x += 11
				}
				want[g] = x
			}
			res := &Result{Output: u32Bytes(got)}
			res.VerifyErr = compareU32(got, want, "calltree")
			res.Stdout = fmt.Sprintf("calltree n=%d checksum=%08x\n", n, checksum(res.Output))
			return res, nil
		},
	}
}

const (
	callTreeCTAs    = 2
	callTreeThreads = 64
)

// buildCallTree assembles the calltree kernel by hand. Layout:
//
//	entry:  load params, g = ctaid*ntid+tid, x = in[g], CAL fn1,
//	        out[g] = x, EXIT
//	fn1:    CAL fn2, then parity divergence (+7 even / +11 odd)
//	        reconverged through SSY/SYNC before the RET
//	fn2:    x = x*2 + 5, RET
//
// Registers (R1 is the ABI stack pointer and stays untouched so the SASSI
// save/restore sequences can spill through it): R2:R3 in, R4:R5 out,
// R6 g, R7 x, R8:R9 address, R10 scratch.
func buildCallTree() (*sass.Program, error) {
	op := func(o sass.Opcode, dsts, srcs []sass.Operand, mods sass.Mods) sass.Instruction {
		in := sass.New(o, dsts, srcs)
		in.Mods = mods
		return in
	}
	rr := func(r uint8) []sass.Operand { return []sass.Operand{sass.R(r)} }

	k := &sass.Kernel{
		Name: "calltree", NumRegs: 11, NumPreds: 2,
		BlockDim: [3]int{callTreeThreads, 1, 1},
	}
	inOff := k.AddParam("in", 8)
	outOff := k.AddParam("out", 8)
	k.Instrs = []sass.Instruction{
		// entry
		sass.New(sass.OpMOV, rr(2), []sass.Operand{sass.CMem(0, int64(inOff))}),
		sass.New(sass.OpMOV, rr(3), []sass.Operand{sass.CMem(0, int64(inOff)+4)}),
		sass.New(sass.OpMOV, rr(4), []sass.Operand{sass.CMem(0, int64(outOff))}),
		sass.New(sass.OpMOV, rr(5), []sass.Operand{sass.CMem(0, int64(outOff)+4)}),
		sass.New(sass.OpS2R, rr(6), []sass.Operand{sass.SReg(sass.SRCtaidX)}),
		sass.New(sass.OpS2R, rr(7), []sass.Operand{sass.SReg(sass.SRNTidX)}),
		sass.New(sass.OpS2R, rr(8), []sass.Operand{sass.SReg(sass.SRTidX)}),
		sass.New(sass.OpIMAD, rr(6), []sass.Operand{sass.R(6), sass.R(7), sass.R(8)}),
		sass.New(sass.OpSHL, rr(8), []sass.Operand{sass.R(6), sass.Imm(2)}),
		op(sass.OpIADD, rr(8), []sass.Operand{sass.R(2), sass.R(8)}, sass.Mods{SetCC: true}),
		op(sass.OpIADD, rr(9), []sass.Operand{sass.R(3), sass.Imm(0)}, sass.Mods{X: true}),
		op(sass.OpLDG, rr(7), []sass.Operand{sass.Mem(8, 0)}, sass.Mods{E: true}),
		sass.New(sass.OpCAL, nil, []sass.Operand{sass.Label("fn1")}),
		sass.New(sass.OpSHL, rr(8), []sass.Operand{sass.R(6), sass.Imm(2)}),
		op(sass.OpIADD, rr(8), []sass.Operand{sass.R(4), sass.R(8)}, sass.Mods{SetCC: true}),
		op(sass.OpIADD, rr(9), []sass.Operand{sass.R(5), sass.Imm(0)}, sass.Mods{X: true}),
		op(sass.OpSTG, nil, []sass.Operand{sass.Mem(8, 0), sass.R(7)}, sass.Mods{E: true}),
		sass.New(sass.OpEXIT, nil, nil),
		// fn1
		sass.New(sass.OpCAL, nil, []sass.Operand{sass.Label("fn2")}),
		op(sass.OpLOP, rr(10), []sass.Operand{sass.R(6), sass.Imm(1)}, sass.Mods{Logic: sass.LogicAND}),
		op(sass.OpISETP, []sass.Operand{sass.P(0)},
			[]sass.Operand{sass.R(10), sass.Imm(0), sass.P(sass.PT)},
			sass.Mods{Cmp: sass.CmpNE, Unsigned: true, Logic: sass.LogicAND}),
		sass.New(sass.OpSSY, nil, []sass.Operand{sass.Label("reconv")}),
		sass.New(sass.OpBRA, nil, []sass.Operand{sass.Label("odd")}).WithGuard(sass.PredGuard{Reg: 0}),
		sass.New(sass.OpIADD, rr(7), []sass.Operand{sass.R(7), sass.Imm(7)}),
		sass.New(sass.OpSYNC, nil, nil),
		// odd
		sass.New(sass.OpIADD, rr(7), []sass.Operand{sass.R(7), sass.Imm(11)}),
		sass.New(sass.OpSYNC, nil, nil),
		// reconv
		sass.New(sass.OpRET, nil, nil),
		// fn2
		sass.New(sass.OpSHL, rr(7), []sass.Operand{sass.R(7), sass.Imm(1)}),
		sass.New(sass.OpIADD, rr(7), []sass.Operand{sass.R(7), sass.Imm(5)}),
		sass.New(sass.OpRET, nil, nil),
	}
	k.Labels = map[string]int{"fn1": 18, "odd": 25, "reconv": 27, "fn2": 28}
	if err := k.ResolveLabels(); err != nil {
		return nil, err
	}
	prog := sass.NewProgram()
	prog.AddKernel(k)
	return prog, nil
}
