package workloads

import (
	"fmt"

	"sassi/internal/cuda"
	"sassi/internal/ptx"
	"sassi/internal/sass"
	"sassi/internal/sim"
)

func init() { register(vecAddSpec()) }

// vecAddSpec is the quickstart workload: out[i] = a[i] + b[i].
func vecAddSpec() *Spec {
	return &Spec{
		Name:      "demo.vecadd",
		OutputTol: 1e-5,
		Datasets:  []string{"small", "large"},
		Build: func() (*ptx.Module, error) {
			b := ptx.NewKernel("vecadd")
			a := b.ParamU64("a")
			bb := b.ParamU64("b")
			out := b.ParamU64("out")
			n := b.ParamU32("n")
			i := b.GlobalTidX()
			b.If(b.Setp(sass.CmpLT, i, n), func() {
				av := b.LdGlobalF32(b.Index(a, i, 2), 0)
				bv := b.LdGlobalF32(b.Index(bb, i, 2), 0)
				b.StGlobalF32(b.Index(out, i, 2), 0, b.Add(av, bv))
			})
			f, err := b.Done()
			if err != nil {
				return nil, err
			}
			m := ptx.NewModule()
			m.Add(f)
			return m, nil
		},
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			n := 512
			if dataset == "large" {
				n = 8192
			}
			r := newRNG(7)
			a := r.f32s(n, -1, 1)
			b := r.f32s(n, -1, 1)
			da := ctx.AllocF32("a", a)
			db := ctx.AllocF32("b", b)
			do := ctx.Malloc(uint64(4*n), "out")
			if _, err := ctx.LaunchKernel(prog, "vecadd", sim.LaunchParams{
				Grid: sim.D1((n + 127) / 128), Block: sim.D1(128),
				Args: []uint64{uint64(da), uint64(db), uint64(do), uint64(n)},
			}); err != nil {
				return nil, err
			}
			got, err := ctx.ReadF32(do, n)
			if err != nil {
				return nil, err
			}
			want := make([]float32, n)
			for i := range want {
				want[i] = a[i] + b[i]
			}
			res := &Result{Output: f32Bytes(got)}
			res.VerifyErr = compareF32(got, want, 1e-6, "vecadd")
			res.Stdout = fmt.Sprintf("vecadd n=%d %s\n", n, f32Summary(res.Output))
			return res, nil
		},
	}
}
