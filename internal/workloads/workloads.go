// Package workloads provides the benchmark suite the case studies run on:
// kernels in the spirit of Parboil, Rodinia, and miniFE, authored against
// the PTX builder, with host drivers, deterministic synthetic datasets, and
// CPU reference implementations for verification.
//
// The real benchmark inputs (road networks, MRI samples, ...) are not
// available here; each workload instead generates synthetic data shaped to
// exercise the same behavioural axes (branch divergence, memory address
// divergence, value locality) — see DESIGN.md for the substitution table.
package workloads

import (
	"fmt"
	"sort"

	"sassi/internal/analysis"
	"sassi/internal/cuda"
	"sassi/internal/ptx"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	"sassi/internal/sassi"
)

// Result is what one workload run produced.
type Result struct {
	// Stdout is the run's printed summary (the analog of benchmark stdout,
	// used by the fault-injection outcome classifier).
	Stdout string
	// Output is the primary output buffer (the "output file").
	Output []byte
	// VerifyErr reports disagreement with the CPU reference; nil means the
	// GPU results matched.
	VerifyErr error
}

// Spec describes one workload.
type Spec struct {
	// Name is suite-qualified, e.g. "parboil.bfs".
	Name string
	// Datasets lists accepted dataset keys; the first is the default.
	Datasets []string
	// Build constructs the workload's kernels.
	Build func() (*ptx.Module, error)
	// BuildProgram, when set, takes precedence over Build: the workload is
	// authored directly in SASS rather than lowered through ptx/ptxas.
	// Needed for shapes the PTX builder never emits (CAL/RET call trees).
	// The program still passes through the ptxas verification gate.
	BuildProgram func() (*sass.Program, error)
	// PostCompile, when set, mutates the program after compilation and
	// verification. Seed-buggy mutants use it to corrupt a clean kernel —
	// the corruption lands after the compile-time Verify gate, so the
	// static checkers under test (sassi-lint, load-time CFI validation)
	// are the first line that can reject it.
	PostCompile func(prog *sass.Program) error
	// Run generates inputs for the dataset, launches kernels on ctx with
	// the given compiled program, verifies against the CPU reference, and
	// returns the result. It must be deterministic.
	Run func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error)

	// OutputTol, when nonzero, declares Output to be a float32 array that
	// downstream comparisons (the fault-injection outcome classifier)
	// should compare with this relative tolerance — the analog of Parboil
	// and Rodinia's tolerance-based output comparators. Zero means
	// bit-exact integer output.
	OutputTol float64
}

// OutputsMatch compares two output buffers under the workload's comparator.
func (s *Spec) OutputsMatch(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	if s.OutputTol == 0 {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for i := 0; i+4 <= len(a); i += 4 {
		fa := f32FromBytes(a[i:])
		fb := f32FromBytes(b[i:])
		if fa != fb && !f32Close(fa, fb, s.OutputTol) {
			return false
		}
	}
	return true
}

// DefaultDataset returns the workload's default dataset key.
func (s *Spec) DefaultDataset() string {
	if len(s.Datasets) == 0 {
		return ""
	}
	return s.Datasets[0]
}

// HasDataset reports whether the key is valid for this workload.
func (s *Spec) HasDataset(d string) bool {
	for _, x := range s.Datasets {
		if x == d {
			return true
		}
	}
	return false
}

// Compile builds and compiles the workload's module. SASS-authored
// workloads (BuildProgram) skip ptxas lowering but pass the same
// verification gate; PostCompile runs last, after that gate.
func (s *Spec) Compile(opts ptxas.Options) (*sass.Program, error) {
	var prog *sass.Program
	if s.BuildProgram != nil {
		p, err := s.BuildProgram()
		if err != nil {
			return nil, fmt.Errorf("workload %s: %w", s.Name, err)
		}
		if opts.Verify.Enabled() {
			if diags := analysis.Verify(p); analysis.HasErrors(diags) {
				return nil, fmt.Errorf("workload %s: authored SASS failed verification: %w",
					s.Name, &analysis.VerifyError{Diags: diags})
			}
		}
		prog = p
	} else {
		m, err := s.Build()
		if err != nil {
			return nil, fmt.Errorf("workload %s: %w", s.Name, err)
		}
		p, err := ptxas.Compile(m, opts)
		if err != nil {
			return nil, fmt.Errorf("workload %s: %w", s.Name, err)
		}
		prog = p
	}
	if s.PostCompile != nil {
		if err := s.PostCompile(prog); err != nil {
			return nil, fmt.Errorf("workload %s: post-compile: %w", s.Name, err)
		}
	}
	return prog, nil
}

// CompileCached is Compile through a shared compile cache: every caller
// asking for the same (workload, backend options) pair shares one compiled
// program. A nil cache falls back to a fresh compile. The returned program
// is shared — treat it as read-only; to cache an instrumented variant,
// build it under InstrumentedKey with sassi.Instrument inside the build
// closure.
func (s *Spec) CompileCached(cache *sassi.CompileCache, opts ptxas.Options) (*sass.Program, error) {
	if cache == nil {
		return s.Compile(opts)
	}
	return cache.Get(s.CompileKey(opts), func() (*sass.Program, error) {
		return s.Compile(opts)
	})
}

// CompileKey is the compile-cache key for this workload's uninstrumented
// program under the given backend options.
func (s *Spec) CompileKey(opts ptxas.Options) string {
	return "workload=" + s.Name + " ptxas[" + opts.CacheKey() + "]"
}

// InstrumentedKey is the compile-cache key for this workload instrumented
// with the descriptor instKey (from sassi.Options.CacheKey).
func (s *Spec) InstrumentedKey(opts ptxas.Options, instKey string) string {
	return s.CompileKey(opts) + " inst[" + instKey + "]"
}

var registry = map[string]*Spec{}

func register(s *Spec) {
	if _, dup := registry[s.Name]; dup {
		panic("workloads: duplicate " + s.Name)
	}
	registry[s.Name] = s
}

// Get returns the named workload.
func Get(name string) (*Spec, bool) {
	s, ok := registry[name]
	return s, ok
}

// Names lists registered workloads, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns all specs in name order.
func All() []*Spec {
	var out []*Spec
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

// f32Close reports approximate float equality with a relative tolerance
// wide enough to absorb MUFU/FFMA rounding differences vs float64 refs.
func f32Close(a, b float32, tol float64) bool {
	d := float64(a) - float64(b)
	if d < 0 {
		d = -d
	}
	m := float64(a)
	if m < 0 {
		m = -m
	}
	if bb := float64(b); bb > m {
		m = bb
	} else if -bb > m {
		m = -bb
	}
	return d <= tol*(1+m)
}

// compareF32 verifies a float buffer against its reference.
func compareF32(got, want []float32, tol float64, what string) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: length %d != %d", what, len(got), len(want))
	}
	for i := range got {
		if !f32Close(got[i], want[i], tol) {
			return fmt.Errorf("%s: [%d] = %v, want %v", what, i, got[i], want[i])
		}
	}
	return nil
}

// compareU32 verifies a uint32 buffer against its reference.
func compareU32(got, want []uint32, what string) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: length %d != %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("%s: [%d] = %d, want %d", what, i, got[i], want[i])
		}
	}
	return nil
}

// f32Bytes serializes floats for Result.Output.
func f32Bytes(v []float32) []byte {
	out := make([]byte, 4*len(v))
	for i, f := range v {
		putF32(out[4*i:], f)
	}
	return out
}

// u32Bytes serializes uint32s for Result.Output.
func u32Bytes(v []uint32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		putU32(out[4*i:], x)
	}
	return out
}

// f32Summary renders a float output buffer as a rounded aggregate, the way
// benchmark stdout reports results (timing/summary lines rather than exact
// dumps). Rounding makes the printed summary insensitive to within-
// tolerance perturbations, which the fault classifier relies on.
func f32Summary(b []byte) string {
	var sum float64
	n := 0
	for i := 0; i+4 <= len(b); i += 4 {
		sum += float64(f32FromBytes(b[i:]))
		n++
	}
	if n == 0 {
		return "mean=0"
	}
	return fmt.Sprintf("mean=%.3g", sum/float64(n))
}

// checksum is a tiny FNV-style digest used in Stdout summaries.
func checksum(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h = (h ^ uint32(c)) * 16777619
	}
	return h
}
