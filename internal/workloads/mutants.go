package workloads

import (
	"fmt"
	"sort"

	"sassi/internal/cuda"
	"sassi/internal/ptx"
	"sassi/internal/sass"
	"sassi/internal/sim"
)

// Seed-buggy mutants: deliberately broken variants of workload kernels
// used to validate the concurrency checker (internal/analysis/concurrency
// statically, internal/handlers.RaceChecker dynamically). They live in a
// registry separate from the benchmark suite so Names()/All() — and
// everything iterating the suite, like CI's lint gate over built-ins —
// never picks them up.
var mutantRegistry = map[string]*Spec{}

func registerMutant(s *Spec) {
	if _, dup := mutantRegistry[s.Name]; dup {
		panic("workloads: duplicate mutant " + s.Name)
	}
	mutantRegistry[s.Name] = s
}

// GetMutant returns the named seed-buggy mutant.
func GetMutant(name string) (*Spec, bool) {
	s, ok := mutantRegistry[name]
	return s, ok
}

// MutantNames lists registered mutants, sorted.
func MutantNames() []string {
	out := make([]string, 0, len(mutantRegistry))
	for n := range mutantRegistry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	registerMutant(sgemmVariant("mutant.sgemm-nobar", false))
	registerMutant(stencilHaloMutant())
	registerMutant(bfsFrontierMutant())
	registerMutant(cfiRetNoCallMutant())
	registerMutant(cfiCalMidBlockMutant())
	registerMutant(cfiSSYSkewMutant())
}

// cfiMutant derives a control-flow-integrity mutant from the calltree
// workload: the clean kernel compiles (and passes the Verify gate), then
// PostCompile corrupts one control instruction. The static cfi pass must
// reject the result, and the runtime CFIChecker must flag the same class
// during execution.
func cfiMutant(name string, mutate func(k *sass.Kernel) error) *Spec {
	s := callTreeSpec()
	s.Name = name
	s.PostCompile = func(prog *sass.Program) error {
		k, ok := prog.Kernel("calltree")
		if !ok {
			return fmt.Errorf("calltree kernel missing")
		}
		return mutate(k)
	}
	return s
}

// expectOp guards a mutant's hardcoded instruction index against drift in
// the hand-authored calltree kernel.
func expectOp(k *sass.Kernel, i int, op sass.Opcode) error {
	if i >= len(k.Instrs) || k.Instrs[i].Op != op {
		return fmt.Errorf("calltree layout changed: instr %d is not %v", i, op)
	}
	return nil
}

// cfiRetNoCallMutant replaces the entry's final store with a RET: the
// return executes with an empty call stack (the matching CAL already
// popped). Statically that is "RET reachable with an empty call stack";
// dynamically the CFIChecker reports ret-underflow before the machine
// faults.
func cfiRetNoCallMutant() *Spec {
	return cfiMutant("mutant.cfi-ret-nocall", func(k *sass.Kernel) error {
		if err := expectOp(k, 16, sass.OpSTG); err != nil {
			return err
		}
		k.Instrs[16] = sass.New(sass.OpRET, nil, nil)
		return nil
	})
}

// cfiCalMidBlockMutant retargets the entry's CAL into the middle of fn1,
// past its first instructions: a call into the interior of a region. The
// static pass rejects it (mid-region entry, fn2's RET no longer reachable
// from any call), and the CFI loader's fail-closed validation refuses to
// arm the kernel.
func cfiCalMidBlockMutant() *Spec {
	return cfiMutant("mutant.cfi-cal-midblock", func(k *sass.Kernel) error {
		if err := expectOp(k, 12, sass.OpCAL); err != nil {
			return err
		}
		k.Instrs[12].Srcs[0].Imm = 20 // skips fn1's CAL fn2 and LOP
		return nil
	})
}

// cfiSSYSkewMutant drags fn1's SSY reconvergence target from the RET back
// onto the odd arm's SYNC, inside its own region: after reconvergence the
// warp replays that SYNC on an empty divergence stack and silently
// retires. Statically the SYNC loses its enclosing region; dynamically the
// CFIChecker reports sync-underflow.
func cfiSSYSkewMutant() *Spec {
	return cfiMutant("mutant.cfi-ssy-skew", func(k *sass.Kernel) error {
		if err := expectOp(k, 21, sass.OpSSY); err != nil {
			return err
		}
		k.Instrs[21].Srcs[0].Imm = 26 // the odd arm's SYNC, not the reconv point
		return nil
	})
}

// stencilHaloMutant is a 1-D three-point stencil whose barrier between
// staging the input into shared memory and reading the neighbour's slot
// is missing: thread t reads slot t+1 before its owner is guaranteed to
// have written it (the classic halo race).
func stencilHaloMutant() *Spec {
	const n = 64
	return &Spec{
		Name:      "mutant.stencil-halo",
		OutputTol: 1e-5,
		Datasets:  []string{"small"},
		Build: func() (*ptx.Module, error) {
			b := ptx.NewKernel("stencil")
			b.ReqBlock(n, 1, 1)
			pin := b.ParamU64("in")
			pout := b.ParamU64("out")
			off := b.F.AllocShared(n * 4)

			t := b.TidX()
			myAddr := b.AddI(b.ShlI(t, 2), int64(off))
			b.StSharedF32(myAddr, 0, b.LdGlobalF32(b.Index(pin, t, 2), 0))
			// BUG: b.Bar() belongs here — the halo read below crosses warps.
			right := b.Min(b.AddI(t, 1), b.ImmU32(n-1))
			sum := b.Add(
				b.LdSharedF32(myAddr, 0),
				b.LdSharedF32(b.AddI(b.ShlI(right, 2), int64(off)), 0))
			b.StGlobalF32(b.Index(pout, t, 2), 0, sum)
			f, err := b.Done()
			if err != nil {
				return nil, err
			}
			m := ptx.NewModule()
			m.Add(f)
			return m, nil
		},
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			r := newRNG(23)
			in := r.f32s(n, -1, 1)
			din := ctx.AllocF32("in", in)
			dout := ctx.Malloc(4*n, "out")
			if _, err := ctx.LaunchKernel(prog, "stencil", sim.LaunchParams{
				Grid: sim.D1(1), Block: sim.D1(n),
				Args: []uint64{uint64(din), uint64(dout)},
			}); err != nil {
				return nil, err
			}
			got, err := ctx.ReadF32(dout, n)
			if err != nil {
				return nil, err
			}
			want := make([]float32, n)
			for i := 0; i < n; i++ {
				j := i + 1
				if j > n-1 {
					j = n - 1
				}
				want[i] = in[i] + in[j]
			}
			res := &Result{Output: f32Bytes(got)}
			res.VerifyErr = compareF32(got, want, 1e-5, "stencil")
			res.Stdout = fmt.Sprintf("stencil n=%d %s\n", n, f32Summary(res.Output))
			return res, nil
		},
	}
}

// bfsFrontierMutant models a BFS frontier push whose shared next-frontier
// counter is bumped with a plain load/add/store instead of an atomic:
// concurrent increments in the same barrier interval lose updates.
func bfsFrontierMutant() *Spec {
	const n = 64
	return &Spec{
		Name:     "mutant.bfs-frontier",
		Datasets: []string{"small"},
		Build: func() (*ptx.Module, error) {
			b := ptx.NewKernel("bfs_frontier")
			b.ReqBlock(n, 1, 1)
			pin := b.ParamU64("active")
			pout := b.ParamU64("count")
			cnt := b.F.AllocShared(4)

			t := b.TidX()
			cntAddr := b.Var(b.ImmU32(0))
			b.If(b.SetpI(sass.CmpEQ, t, 0), func() {
				b.StSharedU32(cntAddr, int64(cnt), b.ImmU32(0))
			})
			b.Bar()
			active := b.SetpI(sass.CmpNE, b.LdGlobalU32(b.Index(pin, t, 2), 0), 0)
			b.If(active, func() {
				// BUG: should be b.AtomAddShared(cntAddr, int64(cnt), ...).
				v := b.LdSharedU32(cntAddr, int64(cnt))
				b.StSharedU32(cntAddr, int64(cnt), b.AddI(v, 1))
			})
			b.Bar()
			b.If(b.SetpI(sass.CmpEQ, t, 0), func() {
				b.StGlobalU32(pout, 0, b.LdSharedU32(cntAddr, int64(cnt)))
			})
			f, err := b.Done()
			if err != nil {
				return nil, err
			}
			m := ptx.NewModule()
			m.Add(f)
			return m, nil
		},
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			active := make([]uint32, n)
			want := uint32(0)
			for i := range active {
				if i%3 != 0 {
					active[i] = 1
					want++
				}
			}
			din := ctx.AllocU32("active", active)
			dout := ctx.Malloc(4, "count")
			if _, err := ctx.LaunchKernel(prog, "bfs_frontier", sim.LaunchParams{
				Grid: sim.D1(1), Block: sim.D1(n),
				Args: []uint64{uint64(din), uint64(dout)},
			}); err != nil {
				return nil, err
			}
			got, err := ctx.ReadU32(dout, 1)
			if err != nil {
				return nil, err
			}
			res := &Result{Output: u32Bytes(got)}
			res.VerifyErr = compareU32(got, []uint32{want}, "bfs frontier count")
			res.Stdout = fmt.Sprintf("bfs frontier=%d\n", got[0])
			return res, nil
		},
	}
}
