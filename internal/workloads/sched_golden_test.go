package workloads

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sassi/internal/ptxas"
)

// TestScheduledDisassemblyGolden pins the list scheduler's output (seed 0,
// the deterministic heuristic) for the same three workloads the plain
// disassembly golden covers. A scheduler or latency-model change shows up
// as a reviewable reordering diff; the plain goldens stay untouched, so
// the two files also document exactly what the scheduler moved.
func TestScheduledDisassemblyGolden(t *testing.T) {
	for _, name := range []string{"parboil.sgemm", "parboil.bfs", "parboil.stencil"} {
		t.Run(name, func(t *testing.T) {
			spec, ok := Get(name)
			if !ok {
				t.Fatalf("workload %q not registered", name)
			}
			m, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			prog, err := ptxas.Compile(m, ptxas.Options{Schedule: true})
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			for _, k := range prog.Kernels {
				if k.SchedOrig == nil {
					t.Errorf("kernel %s not scheduled", k.Name)
				}
				b.WriteString(k.Disassemble())
				b.WriteByte('\n')
			}
			got := b.String()

			golden := filepath.Join("testdata", "golden",
				strings.ReplaceAll(name, ".", "-")+"-sched.sass")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run `go test -run ScheduledDisassemblyGolden -update ./internal/workloads` to create it)", err)
			}
			if got != string(want) {
				t.Errorf("scheduled SASS for %s changed; diff against %s.\n"+
					"If the change is intended, regenerate with -update.\n--- got ---\n%s",
					name, golden, got)
			}
		})
	}
}
