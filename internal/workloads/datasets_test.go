package workloads

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := newRNG(7), newRNG(7)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("rng not deterministic")
		}
	}
	if newRNG(0).next() == 0 {
		t.Error("zero seed not remapped")
	}
}

func TestRNGRanges(t *testing.T) {
	r := newRNG(9)
	for i := 0; i < 1000; i++ {
		if v := r.intn(10); v < 0 || v >= 10 {
			t.Fatalf("intn out of range: %d", v)
		}
		if f := r.f32(); f < 0 || f >= 1 {
			t.Fatalf("f32 out of range: %f", f)
		}
	}
	if r.intn(0) != 0 {
		t.Error("intn(0) != 0")
	}
	fs := r.f32s(50, -2, 2)
	for _, f := range fs {
		if f < -2 || f >= 2 {
			t.Fatalf("f32s out of range: %f", f)
		}
	}
}

// graphWellFormed checks CSR invariants.
func graphWellFormed(t *testing.T, g *Graph) {
	t.Helper()
	if len(g.RowPtr) != g.N+1 {
		t.Fatalf("rowptr length %d for %d nodes", len(g.RowPtr), g.N)
	}
	for v := 0; v < g.N; v++ {
		if g.RowPtr[v+1] < g.RowPtr[v] {
			t.Fatalf("rowptr not monotone at %d", v)
		}
	}
	if int(g.RowPtr[g.N]) != len(g.Cols) {
		t.Fatalf("rowptr end %d != cols %d", g.RowPtr[g.N], len(g.Cols))
	}
	for _, c := range g.Cols {
		if int(c) >= g.N {
			t.Fatalf("edge to out-of-range node %d", c)
		}
	}
}

func TestGraphGenerators(t *testing.T) {
	for _, ds := range []string{"1M", "NY", "SF", "UT", "other"} {
		g := bfsGraph(ds)
		graphWellFormed(t, g)
		if g.Edges() == 0 {
			t.Errorf("%s: empty graph", ds)
		}
	}
	// Determinism.
	a, b := bfsGraph("NY"), bfsGraph("NY")
	if a.N != b.N || a.Edges() != b.Edges() {
		t.Error("graph generation not deterministic")
	}
	// Distinct shapes: the road networks have lower max degree than the
	// random graph has average degree.
	rnd := bfsGraph("1M")
	road := bfsGraph("NY")
	maxDeg := func(g *Graph) int {
		m := 0
		for v := 0; v < g.N; v++ {
			if d := int(g.RowPtr[v+1] - g.RowPtr[v]); d > m {
				m = d
			}
		}
		return m
	}
	if maxDeg(road) >= maxDeg(rnd) {
		t.Errorf("road max degree %d >= random %d", maxDeg(road), maxDeg(rnd))
	}
}

func TestCPUBFSLevels(t *testing.T) {
	// Path graph 0->1->2->3.
	g := &Graph{N: 4, RowPtr: []uint32{0, 1, 2, 3, 3}, Cols: []uint32{1, 2, 3}}
	lv := cpuBFS(g, 0)
	for i, want := range []uint32{0, 1, 2, 3} {
		if lv[i] != want {
			t.Errorf("level[%d] = %d", i, lv[i])
		}
	}
	// Unreachable node.
	g2 := &Graph{N: 3, RowPtr: []uint32{0, 1, 1, 1}, Cols: []uint32{1}}
	lv2 := cpuBFS(g2, 0)
	if lv2[2] != 0xffffffff {
		t.Errorf("unreachable level = %d", lv2[2])
	}
}

func TestSparseMatrixWellFormed(t *testing.T) {
	m := genSparseRandom(100, 8, 3)
	if m.Rows != 100 || len(m.RowPtr) != 101 {
		t.Fatal("geometry wrong")
	}
	if int(m.RowPtr[100]) != len(m.Cols) || len(m.Cols) != len(m.Vals) {
		t.Fatal("nnz bookkeeping wrong")
	}
	for _, c := range m.Cols {
		if int(c) >= m.Rows {
			t.Fatal("column out of range")
		}
	}
}

func TestFEMatrixShape(t *testing.T) {
	m := genFEMatrix(4, 1)
	if m.Rows != 64 {
		t.Fatalf("rows = %d", m.Rows)
	}
	// Interior rows (there is exactly (4-2)^3 = 8) have 27 entries.
	interior := 0
	for i := 0; i < m.Rows; i++ {
		if m.RowPtr[i+1]-m.RowPtr[i] == 27 {
			interior++
		}
	}
	if interior != 8 {
		t.Errorf("27-entry rows = %d, want 8", interior)
	}
}

// TestELLEquivalenceQuick: converting CSR to ELL preserves the matrix (the
// SpMV result is identical for any x).
func TestELLEquivalenceQuick(t *testing.T) {
	f := func(seed uint64, rowsSel uint8) bool {
		rows := 8 + int(rowsSel%32)
		m := genSparseRandom(rows, 4, seed|1)
		e := toELL(m)
		r := newRNG(seed ^ 0xABCD)
		x := r.f32s(rows, -1, 1)
		want := cpuSpMV(m, x)
		// SpMV through the ELL representation.
		got := make([]float32, rows)
		for row := 0; row < rows; row++ {
			var sum float32
			for k := 0; k < e.PerRow; k++ {
				sum += e.Vals[k*rows+row] * x[e.Cols[k*rows+row]]
			}
			got[row] = sum
		}
		for i := range got {
			d := float64(got[i] - want[i])
			if d < -1e-3 || d > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumStable(t *testing.T) {
	if checksum([]byte("hello")) != checksum([]byte("hello")) {
		t.Error("checksum unstable")
	}
	if checksum([]byte("hello")) == checksum([]byte("world")) {
		t.Error("checksum trivially collides")
	}
}
