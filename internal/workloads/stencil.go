package workloads

import (
	"fmt"

	"sassi/internal/cuda"
	"sassi/internal/ptx"
	"sassi/internal/sass"
	"sassi/internal/sim"
)

func init() {
	register(stencilSpec())
	register(histoSpec())
	register(mriqSpec())
}

// stencilSpec is Parboil stencil: a 7-point 3D Jacobi sweep. One thread per
// (x, y) column marches in z; interior-only guard gives near-uniform
// control flow and unit-stride coalesced accesses.
func stencilSpec() *Spec {
	return &Spec{
		Name:      "parboil.stencil",
		OutputTol: 1e-3,
		Datasets:  []string{"small"},
		Build: func() (*ptx.Module, error) {
			b := ptx.NewKernel("stencil")
			in := b.ParamU64("in")
			out := b.ParamU64("out")
			nx := b.ParamU32("nx")
			ny := b.ParamU32("ny")
			nz := b.ParamU32("nz")
			c0 := b.ParamF32("c0")
			c1 := b.ParamF32("c1")

			x := b.GlobalTidX()
			y := b.CtaY() // blocks are 1 row high: y is the block row
			inX := b.PAnd(b.SetpI(sass.CmpGT, x, 0), b.Setp(sass.CmpLT, b.AddI(x, 1), nx))
			inY := b.PAnd(b.SetpI(sass.CmpGT, y, 0), b.Setp(sass.CmpLT, b.AddI(y, 1), ny))
			b.If(b.PAnd(inX, inY), func() {
				plane := b.Mul(nx, ny)
				rowBase := b.Mad(y, nx, x)
				z := b.Var(b.ImmU32(1))
				b.While(func() ptx.Value {
					return b.Setp(sass.CmpLT, b.AddI(z, 1), nz)
				}, func() {
					idx := b.Mad(z, plane, rowBase)
					center := b.LdGlobalF32(b.Index(in, idx, 2), 0)
					west := b.LdGlobalF32(b.Index(in, b.SubI(idx, 1), 2), 0)
					east := b.LdGlobalF32(b.Index(in, b.AddI(idx, 1), 2), 0)
					north := b.LdGlobalF32(b.Index(in, b.Sub(idx, nx), 2), 0)
					south := b.LdGlobalF32(b.Index(in, b.Add(idx, nx), 2), 0)
					below := b.LdGlobalF32(b.Index(in, b.Sub(idx, plane), 2), 0)
					above := b.LdGlobalF32(b.Index(in, b.Add(idx, plane), 2), 0)
					sum := b.Add(b.Add(b.Add(west, east), b.Add(north, south)), b.Add(below, above))
					b.StGlobalF32(b.Index(out, idx, 2), 0, b.Fma(sum, c1, b.Mul(center, c0)))
					b.Assign(z, b.AddI(z, 1))
				})
			})
			f, err := b.Done()
			if err != nil {
				return nil, err
			}
			m := ptx.NewModule()
			m.Add(f)
			return m, nil
		},
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			nx, ny, nz := 32, 16, 12
			r := newRNG(61)
			in := r.f32s(nx*ny*nz, 0, 1)
			c0, c1 := float32(0.5), float32(1.0/12.0)
			dIn := ctx.AllocF32("in", in)
			out := make([]float32, len(in))
			copy(out, in)
			dOut := ctx.AllocF32("out", out)
			if _, err := ctx.LaunchKernel(prog, "stencil", sim.LaunchParams{
				Grid: sim.Dim3{X: (nx + 63) / 64, Y: ny, Z: 1}, Block: sim.D1(64),
				Args: []uint64{uint64(dIn), uint64(dOut),
					uint64(nx), uint64(ny), uint64(nz),
					uint64(f32ArgBits(c0)), uint64(f32ArgBits(c1))},
			}); err != nil {
				return nil, err
			}
			got, err := ctx.ReadF32(dOut, len(in))
			if err != nil {
				return nil, err
			}
			want := make([]float32, len(in))
			copy(want, in)
			idx := func(x, y, z int) int { return (z*ny+y)*nx + x }
			for z := 1; z < nz-1; z++ {
				for y := 1; y < ny-1; y++ {
					for x := 1; x < nx-1; x++ {
						sum := (in[idx(x-1, y, z)] + in[idx(x+1, y, z)]) +
							(in[idx(x, y-1, z)] + in[idx(x, y+1, z)]) +
							(in[idx(x, y, z-1)] + in[idx(x, y, z+1)])
						want[idx(x, y, z)] = sum*c1 + in[idx(x, y, z)]*c0
					}
				}
			}
			res := &Result{Output: f32Bytes(got)}
			res.VerifyErr = compareF32(got, want, 1e-4, "stencil")
			res.Stdout = fmt.Sprintf("stencil %dx%dx%d %s\n", nx, ny, nz, f32Summary(res.Output))
			return res, nil
		},
	}
}

// f32ArgBits packs a float kernel argument.
func f32ArgBits(f float32) uint32 {
	return f32bitsOf(f)
}

// histoSpec is Parboil histo: data-dependent global atomics with heavy
// contention on popular bins.
func histoSpec() *Spec {
	return &Spec{
		Name:     "parboil.histo",
		Datasets: []string{"small", "large"},
		Build: func() (*ptx.Module, error) {
			b := ptx.NewKernel("histo")
			data := b.ParamU64("data")
			hist := b.ParamU64("hist")
			n := b.ParamU32("n")
			i := b.GlobalTidX()
			b.If(b.Setp(sass.CmpLT, i, n), func() {
				v := b.LdGlobalU32(b.Index(data, i, 2), 0)
				b.AtomAddGlobal(b.Index(hist, v, 2), 0, b.ImmU32(1))
			})
			f, err := b.Done()
			if err != nil {
				return nil, err
			}
			m := ptx.NewModule()
			m.Add(f)
			return m, nil
		},
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			const bins = 256
			n := 4096
			if dataset == "large" {
				n = 16384
			}
			r := newRNG(71)
			data := make([]uint32, n)
			for i := range data {
				// Skewed distribution: squaring biases toward low bins,
				// like histo's image inputs.
				v := r.intn(bins)
				data[i] = uint32(v * v / bins)
			}
			dData := ctx.AllocU32("data", data)
			dHist := ctx.AllocU32("hist", make([]uint32, bins))
			if _, err := ctx.LaunchKernel(prog, "histo", sim.LaunchParams{
				Grid: sim.D1((n + 127) / 128), Block: sim.D1(128),
				Args: []uint64{uint64(dData), uint64(dHist), uint64(n)},
			}); err != nil {
				return nil, err
			}
			got, err := ctx.ReadU32(dHist, bins)
			if err != nil {
				return nil, err
			}
			want := make([]uint32, bins)
			for _, v := range data {
				want[v]++
			}
			res := &Result{Output: u32Bytes(got)}
			res.VerifyErr = compareU32(got, want, "histo")
			res.Stdout = fmt.Sprintf("histo n=%d checksum=%08x\n", n, checksum(res.Output))
			return res, nil
		},
	}
}

// mriqSpec is Parboil mri-q's Q computation: per-sample trigonometric
// accumulation. Fully convergent, MUFU (sin/cos) heavy — the shape that
// makes its value profile distinctive in Table 2.
func mriqSpec() *Spec {
	return &Spec{
		Name:      "parboil.mri-q",
		OutputTol: 2e-2,
		Datasets:  []string{"small"},
		Build: func() (*ptx.Module, error) {
			b := ptx.NewKernel("mriq")
			kx := b.ParamU64("kx")
			ky := b.ParamU64("ky")
			phi := b.ParamU64("phi")
			x := b.ParamU64("x")
			y := b.ParamU64("y")
			qr := b.ParamU64("qr")
			qi := b.ParamU64("qi")
			n := b.ParamU32("n") // output points
			k := b.ParamU32("k") // samples
			i := b.GlobalTidX()
			b.If(b.Setp(sass.CmpLT, i, n), func() {
				xi := b.LdGlobalF32(b.Index(x, i, 2), 0)
				yi := b.LdGlobalF32(b.Index(y, i, 2), 0)
				sumR := b.Var(b.ImmF32(0))
				sumI := b.Var(b.ImmF32(0))
				j := b.Var(b.ImmU32(0))
				b.While(func() ptx.Value { return b.Setp(sass.CmpLT, j, k) }, func() {
					kxv := b.LdGlobalF32(b.Index(kx, j, 2), 0)
					kyv := b.LdGlobalF32(b.Index(ky, j, 2), 0)
					ph := b.LdGlobalF32(b.Index(phi, j, 2), 0)
					arg := b.Fma(kxv, xi, b.Mul(kyv, yi))
					b.Assign(sumR, b.Fma(ph, b.Cos(arg), sumR))
					b.Assign(sumI, b.Fma(ph, b.Sin(arg), sumI))
					b.Assign(j, b.AddI(j, 1))
				})
				b.StGlobalF32(b.Index(qr, i, 2), 0, sumR)
				b.StGlobalF32(b.Index(qi, i, 2), 0, sumI)
			})
			f, err := b.Done()
			if err != nil {
				return nil, err
			}
			m := ptx.NewModule()
			m.Add(f)
			return m, nil
		},
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			const n, k = 512, 64
			r := newRNG(81)
			kx := r.f32s(k, -1, 1)
			ky := r.f32s(k, -1, 1)
			phi := r.f32s(k, 0, 1)
			x := r.f32s(n, -3, 3)
			y := r.f32s(n, -3, 3)
			dkx := ctx.AllocF32("kx", kx)
			dky := ctx.AllocF32("ky", ky)
			dphi := ctx.AllocF32("phi", phi)
			dx := ctx.AllocF32("x", x)
			dy := ctx.AllocF32("y", y)
			dqr := ctx.Malloc(4*n, "qr")
			dqi := ctx.Malloc(4*n, "qi")
			if _, err := ctx.LaunchKernel(prog, "mriq", sim.LaunchParams{
				Grid: sim.D1((n + 127) / 128), Block: sim.D1(128),
				Args: []uint64{uint64(dkx), uint64(dky), uint64(dphi),
					uint64(dx), uint64(dy), uint64(dqr), uint64(dqi),
					uint64(n), uint64(k)},
			}); err != nil {
				return nil, err
			}
			gotR, err := ctx.ReadF32(dqr, n)
			if err != nil {
				return nil, err
			}
			gotI, err := ctx.ReadF32(dqi, n)
			if err != nil {
				return nil, err
			}
			wantR := make([]float32, n)
			wantI := make([]float32, n)
			for i := 0; i < n; i++ {
				var sr, si float64
				for j := 0; j < k; j++ {
					arg := float64(kx[j])*float64(x[i]) + float64(ky[j])*float64(y[i])
					sr += float64(phi[j]) * cos64(arg)
					si += float64(phi[j]) * sin64(arg)
				}
				wantR[i] = float32(sr)
				wantI[i] = float32(si)
			}
			res := &Result{Output: append(f32Bytes(gotR), f32Bytes(gotI)...)}
			err1 := compareF32(gotR, wantR, 2e-2, "mriq Qr")
			err2 := compareF32(gotI, wantI, 2e-2, "mriq Qi")
			if err1 != nil {
				res.VerifyErr = err1
			} else {
				res.VerifyErr = err2
			}
			res.Stdout = fmt.Sprintf("mri-q n=%d k=%d %s\n", n, k, f32Summary(res.Output))
			return res, nil
		},
	}
}
