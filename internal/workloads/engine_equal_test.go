package workloads_test

import (
	"reflect"
	"testing"

	"sassi/internal/sim"
	"sassi/internal/workloads"
)

// TestPredecodedBitEqualAllWorkloads is the predecoded engine's
// workload-level correctness gate: every registered workload must produce
// per-launch KernelStats bit-equal to the sequential reference
// interpreter, and pass its own output verification, on the predecoded
// engine in both SM-dispatch modes. Stats equality covers the timing
// model (cycles, per-SM cycles, scoreboard stalls, transaction counts) on
// top of the value correctness the verifier checks; register-file and
// memory bit-equality is covered per generated kernel by the difftest
// engine axis.
func TestPredecodedBitEqualAllWorkloads(t *testing.T) {
	for _, spec := range workloads.All() {
		t.Run(spec.Name, func(t *testing.T) {
			base := sim.MiniGPU()
			base.SequentialSMs = true
			want := collectStats(t, spec.Name, "default", base)

			cfg := sim.MiniGPU()
			cfg.Engine = sim.EnginePredecoded
			cfg.SequentialSMs = true
			got := collectStats(t, spec.Name, "default", cfg)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("predecoded stats diverge from sequential interpreter:\n got %+v\nwant %+v",
					got, want)
			}

			// Concurrent-SM dispatch: only schedule-invariant workloads can
			// be compared bit-for-bit. A workload with cross-SM atomics
			// (e.g. parboil.bfs's frontier queue) legitimately depends on
			// SM interleaving, so the classic concurrent engine itself
			// diverges from the sequential reference there; comparing the
			// predecoded engine against either would test the race, not the
			// engine.
			classicPar := collectStats(t, spec.Name, "default", sim.MiniGPU())
			if !reflect.DeepEqual(classicPar, want) {
				t.Logf("skipping concurrent-dispatch comparison: workload is schedule-dependent")
				return
			}
			cfg.SequentialSMs = false
			got = collectStats(t, spec.Name, "default", cfg)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("predecoded (concurrent SMs) stats diverge from sequential interpreter:\n got %+v\nwant %+v",
					got, want)
			}
		})
	}
}
