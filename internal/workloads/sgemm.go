package workloads

import (
	"fmt"

	"sassi/internal/cuda"
	"sassi/internal/ptx"
	"sassi/internal/sass"
	"sassi/internal/sim"
)

func init() { register(sgemmSpec()) }

const sgemmTile = 16

// sgemmSpec is Parboil sgemm: C = A*B with 16x16 shared-memory tiling.
// Fully convergent control flow (its only branches are uniform tile loops),
// matching the paper's Table 1 row of zero divergent branches.
func sgemmSpec() *Spec { return sgemmVariant("parboil.sgemm", true) }

// sgemmVariant parameterizes the barrier that separates the inner
// dot-product reads from the next iteration's tile writes; dropping it
// produces the seeded race mutant (mutant.sgemm-nobar).
func sgemmVariant(name string, tailBar bool) *Spec {
	return &Spec{
		Name:      name,
		OutputTol: 1e-3,
		Datasets:  []string{"small", "medium"},
		Build: func() (*ptx.Module, error) {
			b := ptx.NewKernel("sgemm")
			b.ReqBlock(sgemmTile, sgemmTile, 1)
			pa := b.ParamU64("A")
			pb := b.ParamU64("B")
			pc := b.ParamU64("C")
			dimM := b.ParamU32("M")
			dimN := b.ParamU32("N")
			dimK := b.ParamU32("K")
			_ = dimM

			offA := b.F.AllocShared(sgemmTile * sgemmTile * 4)
			offB := b.F.AllocShared(sgemmTile * sgemmTile * 4)

			tx := b.TidX()
			ty := b.TidY()
			row := b.Mad(b.CtaY(), b.ImmU32(sgemmTile), ty)
			col := b.Mad(b.CtaX(), b.ImmU32(sgemmTile), tx)
			acc := b.Var(b.ImmF32(0))

			numTiles := b.ShrI(dimK, 4)
			// Shared byte offsets of this thread's slots.
			myA := b.AddI(b.ShlI(b.Mad(ty, b.ImmU32(sgemmTile), tx), 2), int64(offA))
			myB := b.AddI(b.ShlI(b.Mad(ty, b.ImmU32(sgemmTile), tx), 2), int64(offB))

			b.ForRange(b.Var(b.ImmU32(0)), numTiles, func(t ptx.Value) {
				// As[ty][tx] = A[row*K + t*16 + tx]
				aCol := b.Mad(t, b.ImmU32(sgemmTile), tx)
				aIdx := b.Mad(row, dimK, aCol)
				b.StSharedF32(myA, 0, b.LdGlobalF32(b.Index(pa, aIdx, 2), 0))
				// Bs[ty][tx] = B[(t*16+ty)*N + col]
				bRow := b.Mad(t, b.ImmU32(sgemmTile), ty)
				bIdx := b.Mad(bRow, dimN, col)
				b.StSharedF32(myB, 0, b.LdGlobalF32(b.Index(pb, bIdx, 2), 0))
				b.Bar()
				// acc += As[ty][k]*Bs[k][tx]
				rowBase := b.AddI(b.ShlI(b.Mul(ty, b.ImmU32(sgemmTile)), 2), int64(offA))
				colBase := b.AddI(b.ShlI(tx, 2), int64(offB))
				kk := b.Var(b.ImmU32(0))
				b.While(func() ptx.Value { return b.SetpI(sass.CmpLT, kk, sgemmTile) }, func() {
					av := b.LdSharedF32(b.Add(rowBase, b.ShlI(kk, 2)), 0)
					bv := b.LdSharedF32(b.Mad(kk, b.ImmU32(sgemmTile*4), colBase), 0)
					b.Assign(acc, b.Fma(av, bv, acc))
					b.Assign(kk, b.AddI(kk, 1))
				})
				if tailBar {
					b.Bar()
				}
			})
			cIdx := b.Mad(row, dimN, col)
			b.StGlobalF32(b.Index(pc, cIdx, 2), 0, acc)
			f, err := b.Done()
			if err != nil {
				return nil, err
			}
			m := ptx.NewModule()
			m.Add(f)
			return m, nil
		},
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*Result, error) {
			mDim, nDim, kDim := 32, 32, 32
			if dataset == "medium" {
				mDim, nDim, kDim = 64, 64, 64
			}
			r := newRNG(11)
			a := r.f32s(mDim*kDim, -1, 1)
			bm := r.f32s(kDim*nDim, -1, 1)
			da := ctx.AllocF32("A", a)
			db := ctx.AllocF32("B", bm)
			dc := ctx.Malloc(uint64(4*mDim*nDim), "C")
			if _, err := ctx.LaunchKernel(prog, "sgemm", sim.LaunchParams{
				Grid:  sim.D2(nDim/sgemmTile, mDim/sgemmTile),
				Block: sim.D2(sgemmTile, sgemmTile),
				Args: []uint64{uint64(da), uint64(db), uint64(dc),
					uint64(mDim), uint64(nDim), uint64(kDim)},
			}); err != nil {
				return nil, err
			}
			got, err := ctx.ReadF32(dc, mDim*nDim)
			if err != nil {
				return nil, err
			}
			want := make([]float32, mDim*nDim)
			for i := 0; i < mDim; i++ {
				for j := 0; j < nDim; j++ {
					var sum float64
					for k := 0; k < kDim; k++ {
						sum += float64(a[i*kDim+k]) * float64(bm[k*nDim+j])
					}
					want[i*nDim+j] = float32(sum)
				}
			}
			res := &Result{Output: f32Bytes(got)}
			res.VerifyErr = compareF32(got, want, 1e-4, "sgemm")
			res.Stdout = fmt.Sprintf("sgemm %dx%dx%d %s\n", mDim, nDim, kDim, f32Summary(res.Output))
			return res, nil
		},
	}
}
