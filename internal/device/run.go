package device

import (
	"fmt"
	"math/bits"
	"sync"

	"sassi/internal/sim"
)

// Fn is an instrumentation handler body: per-thread code, as in CUDA.
type Fn func(c *Ctx)

// RunWarp executes fn once per active lane of w.
//
// When parallel is true each lane runs on its own goroutine sharing a
// collectives rendezvous (required when fn uses Ballot/Shfl/All/Any).
// When false, lanes run sequentially in ascending lane order — cheaper,
// and legal only for handlers that use no warp collectives (the ablation
// study measures this difference).
//
// A panic in fn (including simulated memory faults raised by Ctx accessors)
// aborts the warp's handler invocation and is returned as an error, like a
// faulting handler would kill a kernel on hardware.
func RunWarp(d *sim.Device, wp *sim.Warp, active uint32, parallel bool, fn Fn) (err error) {
	lanes := make([]int, 0, 32)
	for m := active; m != 0; m &= m - 1 {
		lanes = append(lanes, bits.TrailingZeros32(m))
	}
	if len(lanes) == 0 {
		return nil
	}
	if !parallel || len(lanes) == 1 {
		for _, l := range lanes {
			c := &Ctx{dev: d, w: wp, t: wp.Threads[l], lane: l, active: active}
			if e := runLane(c, fn); e != nil && err == nil {
				err = e
			}
		}
		return err
	}
	coll := newCollectives(active)
	var wg sync.WaitGroup
	errs := make([]error, len(lanes))
	for i, l := range lanes {
		wg.Add(1)
		go func(i, l int) {
			defer wg.Done()
			defer coll.laneDone()
			c := &Ctx{dev: d, w: wp, t: wp.Threads[l], lane: l, active: active, coll: coll}
			errs[i] = runLane(c, fn)
		}(i, l)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

func runLane(c *Ctx, fn Fn) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if hf, ok := r.(handlerFault); ok {
				err = fmt.Errorf("instrumentation handler: %w", hf.err)
				return
			}
			panic(r)
		}
	}()
	fn(c)
	return nil
}
