// Package device is the device-side runtime that SASSI instrumentation
// handlers are written against. It is the analog of writing handlers in
// CUDA: a handler is a per-thread Go function that receives a Ctx and may
// use warp-wide collectives (Ballot, Shfl, All, Any), atomics on simulated
// device memory, and direct access to the thread's architectural state.
//
// Handlers that use collectives execute one goroutine per active lane in
// true SPMD style (the paper: "SASSI instrumentation is inherently
// parallel"); a rendezvous object gives the collectives their warp-
// synchronous semantics, including CUDA's rule that lanes which have
// returned no longer participate in ballots.
package device

import (
	"fmt"
	"math/bits"

	"sassi/internal/mem"
	"sassi/internal/sim"
)

// Ctx is the per-thread view a handler executes with.
type Ctx struct {
	dev    *sim.Device
	w      *sim.Warp
	t      *sim.Thread
	lane   int
	active uint32
	coll   *collectives
}

// Dev returns the device the kernel is running on.
func (c *Ctx) Dev() *sim.Device { return c.dev }

// Warp returns the warp this lane belongs to. Handlers that audit or
// corrupt warp control state (CFI checking, control-state fault
// injection) use it to reach the call and divergence stacks.
func (c *Ctx) Warp() *sim.Warp { return c.w }

// Thread returns the simulated thread (architectural state access).
func (c *Ctx) Thread() *sim.Thread { return c.t }

// Lane returns this thread's lane index within its warp (threadIdx & 31).
func (c *Ctx) Lane() int { return c.lane }

// ThreadIdx returns the 3-D thread index within the CTA.
func (c *Ctx) ThreadIdx() (x, y, z uint32) { return c.t.TidX, c.t.TidY, c.t.TidZ }

// BlockIdx returns the 3-D CTA index within the grid.
func (c *Ctx) BlockIdx() (x, y, z uint32) { return c.t.CtaX, c.t.CtaY, c.t.CtaZ }

// FlatThreadIdx returns the flattened thread index within the CTA.
func (c *Ctx) FlatThreadIdx() uint32 { return c.t.FlatTid }

// GlobalThreadIdx returns a grid-unique flat thread id.
func (c *Ctx) GlobalThreadIdx() uint64 { return c.t.GlobalFlat }

// ActiveMask returns the warp's active mask at the instrumentation site.
func (c *Ctx) ActiveMask() uint32 { return c.active }

// IsLastActive reports whether this lane is the highest active lane — the
// natural commit point for handlers that run lanes sequentially.
func (c *Ctx) IsLastActive() bool {
	return c.lane == 31-bits.LeadingZeros32(c.active)
}

// Collectives. With no rendezvous (sequential execution of a handler that
// declared itself collective-free) these degrade to single-lane semantics.

// Ballot evaluates pred across the handler's active lanes and returns a
// mask with bit N set iff lane N passed true (CUDA __ballot).
func (c *Ctx) Ballot(pred bool) uint32 {
	if c.coll == nil {
		if pred {
			return 1 << c.lane
		}
		return 0
	}
	return c.coll.ballot(c.lane, pred)
}

// All reports whether pred is true on every active lane (CUDA __all).
func (c *Ctx) All(pred bool) bool {
	m := c.Ballot(pred)
	return m == c.activeAtBallot()
}

// Any reports whether pred is true on any active lane (CUDA __any).
func (c *Ctx) Any(pred bool) bool { return c.Ballot(pred) != 0 }

func (c *Ctx) activeAtBallot() uint32 {
	if c.coll == nil {
		return 1 << c.lane
	}
	return c.coll.participants()
}

// Shfl returns src's value of v from lane srcLane (CUDA __shfl). Lanes that
// are inactive or out of range yield the caller's own value.
func (c *Ctx) Shfl(v uint32, srcLane int) uint32 {
	if c.coll == nil {
		return v
	}
	return uint32(c.coll.shuffle(c.lane, uint64(v), srcLane))
}

// Shfl64 is Shfl for 64-bit values (used to broadcast addresses).
func (c *Ctx) Shfl64(v uint64, srcLane int) uint64 {
	if c.coll == nil {
		return v
	}
	return c.coll.shuffle(c.lane, v, srcLane)
}

// Popc is CUDA __popc.
func Popc(x uint32) int { return bits.OnesCount32(x) }

// Ffs is CUDA __ffs: 1-based index of the least significant set bit, 0 if
// none.
func Ffs(x uint32) int {
	if x == 0 {
		return 0
	}
	return bits.TrailingZeros32(x) + 1
}

// IsWarpLeader reports whether this lane is the first active lane — the
// common "elect a leader to write results" idiom of the paper's handlers.
func (c *Ctx) IsWarpLeader() bool {
	return c.lane == Ffs(c.ActiveMask())-1
}

// Device memory access. Addresses are generic simulated addresses; faults
// panic and are converted into kernel errors by Run, matching the behavior
// of faulty handler code on hardware.

func (c *Ctx) memPanic(err error) {
	if err != nil {
		panic(handlerFault{err})
	}
}

// handlerFault wraps a memory error raised inside a handler.
type handlerFault struct{ err error }

// ReadGlobal32 loads a 32-bit word from global memory.
func (c *Ctx) ReadGlobal32(addr uint64) uint32 {
	v, err := c.dev.Global.Read32(addr)
	c.memPanic(err)
	return v
}

// WriteGlobal32 stores a 32-bit word to global memory.
func (c *Ctx) WriteGlobal32(addr uint64, v uint32) {
	c.memPanic(c.dev.Global.Write32(addr, v))
}

// ReadGlobal64 loads a 64-bit word from global memory.
func (c *Ctx) ReadGlobal64(addr uint64) uint64 {
	v, err := c.dev.Global.Read64(addr)
	c.memPanic(err)
	return v
}

// WriteGlobal64 stores a 64-bit word to global memory.
func (c *Ctx) WriteGlobal64(addr uint64, v uint64) {
	c.memPanic(c.dev.Global.Write64(addr, v))
}

// AtomicAdd32 is CUDA atomicAdd on a 32-bit counter; returns the old value.
func (c *Ctx) AtomicAdd32(addr uint64, v uint32) uint32 {
	old, err := c.dev.Global.Atomic32(addr, func(o uint32) uint32 { return o + v })
	c.memPanic(err)
	return old
}

// AtomicAdd64 is CUDA atomicAdd on an unsigned long long counter.
func (c *Ctx) AtomicAdd64(addr uint64, v uint64) uint64 {
	old, err := c.dev.Global.Atomic64(addr, func(o uint64) uint64 { return o + v })
	c.memPanic(err)
	return old
}

// AtomicAnd32 is CUDA atomicAnd (the value-profiling handler's workhorse).
func (c *Ctx) AtomicAnd32(addr uint64, v uint32) uint32 {
	old, err := c.dev.Global.Atomic32(addr, func(o uint32) uint32 { return o & v })
	c.memPanic(err)
	return old
}

// AtomicOr32 is CUDA atomicOr.
func (c *Ctx) AtomicOr32(addr uint64, v uint32) uint32 {
	old, err := c.dev.Global.Atomic32(addr, func(o uint32) uint32 { return o | v })
	c.memPanic(err)
	return old
}

// AtomicMax32 is CUDA atomicMax (unsigned).
func (c *Ctx) AtomicMax32(addr uint64, v uint32) uint32 {
	old, err := c.dev.Global.Atomic32(addr, func(o uint32) uint32 {
		if v > o {
			return v
		}
		return o
	})
	c.memPanic(err)
	return old
}

// AtomicCAS32 is CUDA atomicCAS.
func (c *Ctx) AtomicCAS32(addr uint64, compare, val uint32) uint32 {
	old, err := c.dev.Global.Atomic32(addr, func(o uint32) uint32 {
		if o == compare {
			return val
		}
		return o
	})
	c.memPanic(err)
	return old
}

// AtomicCAS64 is CUDA atomicCAS on 64-bit values.
func (c *Ctx) AtomicCAS64(addr uint64, compare, val uint64) uint64 {
	old, err := c.dev.Global.Atomic64(addr, func(o uint64) uint64 {
		if o == compare {
			return val
		}
		return o
	})
	c.memPanic(err)
	return old
}

// ReadGeneric32 loads through the generic address space: local and shared
// windows resolve against this thread/CTA (how handlers read the SASSI
// parameter objects the injected code placed on the stack).
func (c *Ctx) ReadGeneric32(addr uint64) uint32 {
	space, off := mem.Decode(addr)
	switch space {
	case mem.SpaceGlobal:
		return c.ReadGlobal32(addr)
	case mem.SpaceLocal:
		v, err := c.t.Local.Read32(off)
		c.memPanic(err)
		return v
	case mem.SpaceShared:
		v, err := c.w.CTA.Shared.Read32(off)
		c.memPanic(err)
		return v
	}
	c.memPanic(&mem.Fault{Space: mem.SpaceInvalid, Addr: addr, Why: "handler access to unmapped generic address"})
	return 0
}

// WriteGeneric32 stores through the generic address space.
func (c *Ctx) WriteGeneric32(addr uint64, v uint32) {
	space, off := mem.Decode(addr)
	switch space {
	case mem.SpaceGlobal:
		c.WriteGlobal32(addr, v)
	case mem.SpaceLocal:
		c.memPanic(c.t.Local.Write32(off, v))
	case mem.SpaceShared:
		c.memPanic(c.w.CTA.Shared.Write32(off, v))
	default:
		c.memPanic(&mem.Fault{Space: mem.SpaceInvalid, Addr: addr, Write: true, Why: "handler access to unmapped generic address"})
	}
}

// ReadGeneric64 loads a 64-bit value through the generic address space.
func (c *Ctx) ReadGeneric64(addr uint64) uint64 {
	lo := c.ReadGeneric32(addr)
	hi := c.ReadGeneric32(addr + 4)
	return uint64(lo) | uint64(hi)<<32
}

// Architectural state access (Case Studies III and IV).

// ReadReg returns the value of GPR r.
func (c *Ctx) ReadReg(r uint8) uint32 { return c.t.ReadReg(r) }

// WriteReg sets GPR r — handlers may mutate ISA-visible state (the
// error-injection capability CUDA-GDB-based approaches lacked).
func (c *Ctx) WriteReg(r uint8, v uint32) { c.t.WriteReg(r, v) }

// ReadPred returns predicate register p.
func (c *Ctx) ReadPred(p uint8) bool { return c.t.ReadPred(p) }

// WritePred sets predicate register p.
func (c *Ctx) WritePred(p uint8, v bool) { c.t.WritePred(p, v) }

// ReadCC returns the 4-bit condition code.
func (c *Ctx) ReadCC() uint8 { return c.t.CC }

// WriteCC sets the 4-bit condition code.
func (c *Ctx) WriteCC(v uint8) { c.t.CC = v & 0xf }

// DynInstrs returns the count of dynamic instructions this thread has
// executed (used by the fault-injection site selector).
func (c *Ctx) DynInstrs() uint64 { return c.t.DynInstrs }

func (c *Ctx) String() string {
	return fmt.Sprintf("ctx{cta=(%d,%d,%d) tid=%d lane=%d}", c.t.CtaX, c.t.CtaY, c.t.CtaZ, c.t.FlatTid, c.lane)
}
