package device_test

import (
	"sync/atomic"
	"testing"

	"sassi/internal/device"
	"sassi/internal/ptx"
	"sassi/internal/ptxas"
	isassi "sassi/internal/sassi"
	"sassi/internal/sim"
)

// collectiveHarness runs a handler before every instruction of a trivial
// kernel on a single full warp and hands each invocation to fn.
func collectiveHarness(t *testing.T, parallel bool, fn device.Fn) {
	t.Helper()
	b := ptx.NewKernel("k")
	out := b.ParamU64("out")
	b.StGlobalU32(out, 0, b.TidX()) // single instrumentable site + exit
	m := ptx.NewModule()
	m.Add(b.MustDone())
	prog, err := ptxas.Compile(m, ptxas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := isassi.Instrument(prog, isassi.Options{
		Where: isassi.BeforeMem, BeforeHandler: "h",
	}); err != nil {
		t.Fatal(err)
	}
	dev := sim.NewDevice(sim.MiniGPU())
	rt := isassi.NewRuntime(prog)
	rt.MustRegister(&isassi.Handler{Name: "h", Sequential: !parallel,
		Fn: func(c *device.Ctx, args isassi.HandlerArgs) { fn(c) }})
	rt.Attach(dev)
	buf := dev.Alloc(4*32, "out")
	if _, err := dev.Launch(prog, "k", sim.LaunchParams{
		Grid: sim.D1(1), Block: sim.D1(32), Args: []uint64{buf},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBallotFullWarp(t *testing.T) {
	collectiveHarness(t, true, func(c *device.Ctx) {
		if got := c.Ballot(true); got != 0xffffffff {
			t.Errorf("ballot(true) = %#x", got)
		}
		if got := c.Ballot(c.Lane()%2 == 0); got != 0x55555555 {
			t.Errorf("ballot(even) = %#x", got)
		}
		if got := c.Ballot(false); got != 0 {
			t.Errorf("ballot(false) = %#x", got)
		}
	})
}

func TestAllAny(t *testing.T) {
	collectiveHarness(t, true, func(c *device.Ctx) {
		if !c.All(true) {
			t.Error("All(true) false")
		}
		if c.All(c.Lane() != 5) {
			t.Error("All with one dissenter true")
		}
		if !c.Any(c.Lane() == 7) {
			t.Error("Any with one true lane false")
		}
		if c.Any(false) {
			t.Error("Any(false) true")
		}
	})
}

func TestShflBroadcast(t *testing.T) {
	collectiveHarness(t, true, func(c *device.Ctx) {
		v := uint32(c.Lane() * 10)
		if got := c.Shfl(v, 3); got != 30 {
			t.Errorf("lane %d shfl from 3 = %d", c.Lane(), got)
		}
		// Out-of-range source yields own value.
		if got := c.Shfl(v, 99); got != v {
			t.Errorf("invalid shfl = %d, want own %d", got, v)
		}
		wide := uint64(c.Lane()) << 40
		if got := c.Shfl64(wide, 31); got != uint64(31)<<40 {
			t.Errorf("shfl64 = %#x", got)
		}
	})
}

func TestEarlyReturnLeavesCollective(t *testing.T) {
	// Odd lanes return before the ballot; the ballot must cover only the
	// even lanes that reach it (CUDA active-thread semantics).
	collectiveHarness(t, true, func(c *device.Ctx) {
		if c.Lane()%2 == 1 {
			return
		}
		if got := c.Ballot(true); got != 0x55555555 {
			t.Errorf("ballot after odd-lane exits = %#x", got)
		}
	})
}

func TestCollectiveLoopLockstep(t *testing.T) {
	// Iterative leader-peeling (the Figure 6 idiom) over distinct values
	// must count exactly 32 unique values in 32 rounds.
	collectiveHarness(t, true, func(c *device.Ctx) {
		mine := uint64(c.Lane())
		workset := c.Ballot(true)
		rounds := 0
		for workset != 0 {
			leader := device.Ffs(workset) - 1
			leadersVal := c.Shfl64(mine, leader)
			notMatch := c.Ballot(leadersVal != mine)
			workset &= notMatch
			rounds++
			if rounds > 32 {
				t.Error("leader peeling did not converge")
				return
			}
		}
		if rounds != 32 {
			t.Errorf("rounds = %d, want 32 (all values distinct)", rounds)
		}
	})
}

func TestIsWarpLeaderAndLastActive(t *testing.T) {
	var leaders, lasts atomic.Int32
	collectiveHarness(t, false, func(c *device.Ctx) {
		if c.IsWarpLeader() {
			leaders.Add(1)
			if c.Lane() != 0 {
				t.Errorf("leader is lane %d", c.Lane())
			}
		}
		if c.IsLastActive() {
			lasts.Add(1)
			if c.Lane() != 31 {
				t.Errorf("last active is lane %d", c.Lane())
			}
		}
	})
	if leaders.Load() != 1 || lasts.Load() != 1 {
		t.Errorf("leaders=%d lasts=%d, want 1/1", leaders.Load(), lasts.Load())
	}
}

func TestPopcFfs(t *testing.T) {
	if device.Popc(0) != 0 || device.Popc(0xF0F0) != 8 || device.Popc(^uint32(0)) != 32 {
		t.Error("Popc wrong")
	}
	if device.Ffs(0) != 0 || device.Ffs(1) != 1 || device.Ffs(0x80000000) != 32 {
		t.Error("Ffs wrong")
	}
}

func TestThreadIdentity(t *testing.T) {
	collectiveHarness(t, false, func(c *device.Ctx) {
		x, y, z := c.ThreadIdx()
		if int(x) != c.Lane() || y != 0 || z != 0 {
			t.Errorf("threadIdx = (%d,%d,%d) lane %d", x, y, z, c.Lane())
		}
		if c.FlatThreadIdx() != x {
			t.Error("flat tid mismatch")
		}
		bx, _, _ := c.BlockIdx()
		if bx != 0 {
			t.Error("blockIdx wrong")
		}
	})
}

func TestHandlerMemFaultBecomesError(t *testing.T) {
	b := ptx.NewKernel("k")
	out := b.ParamU64("out")
	b.StGlobalU32(out, 0, b.TidX())
	m := ptx.NewModule()
	m.Add(b.MustDone())
	prog, err := ptxas.Compile(m, ptxas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := isassi.Instrument(prog, isassi.Options{Where: isassi.BeforeMem, BeforeHandler: "h"}); err != nil {
		t.Fatal(err)
	}
	dev := sim.NewDevice(sim.MiniGPU())
	rt := isassi.NewRuntime(prog)
	rt.MustRegister(&isassi.Handler{Name: "h", Sequential: true,
		Fn: func(c *device.Ctx, args isassi.HandlerArgs) {
			c.ReadGlobal32(0xdeadbeef) // below heap: fault
		}})
	rt.Attach(dev)
	buf := dev.Alloc(4*32, "out")
	_, err = dev.Launch(prog, "k", sim.LaunchParams{
		Grid: sim.D1(1), Block: sim.D1(32), Args: []uint64{buf},
	})
	if err == nil {
		t.Fatal("handler fault not surfaced")
	}
}

func TestAtomicHelpers(t *testing.T) {
	dev := sim.NewDevice(sim.MiniGPU())
	base := dev.Alloc(64, "c")
	collected := false
	collectiveHarnessOnDev(t, dev, func(c *device.Ctx) {
		c.AtomicAdd32(base, 1)
		c.AtomicOr32(base+4, 1<<uint(c.Lane()%8))
		c.AtomicMax32(base+8, uint32(c.Lane()))
		if c.IsWarpLeader() {
			c.AtomicCAS32(base+12, 0, 42)
			c.AtomicCAS32(base+12, 0, 99) // loses
			c.AtomicCAS64(base+16, 0, 1<<40)
			c.WriteGlobal64(base+24, 7)
			if c.ReadGlobal64(base+24) != 7 {
				t.Error("write/read 64 mismatch")
			}
			collected = true
		}
	})
	if !collected {
		t.Fatal("handler never ran")
	}
	if v, _ := dev.Global.Read32(base); v != 32 {
		t.Errorf("add32 = %d", v)
	}
	if v, _ := dev.Global.Read32(base + 4); v != 0xff {
		t.Errorf("or32 = %#x", v)
	}
	if v, _ := dev.Global.Read32(base + 8); v != 31 {
		t.Errorf("max32 = %d", v)
	}
	if v, _ := dev.Global.Read32(base + 12); v != 42 {
		t.Errorf("cas32 = %d", v)
	}
	if v, _ := dev.Global.Read64(base + 16); v != 1<<40 {
		t.Errorf("cas64 = %#x", v)
	}
}

// collectiveHarnessOnDev is collectiveHarness against a caller-provided
// device (so tests can pre-allocate buffers).
func collectiveHarnessOnDev(t *testing.T, dev *sim.Device, fn device.Fn) {
	t.Helper()
	b := ptx.NewKernel("k")
	out := b.ParamU64("out")
	b.StGlobalU32(out, 0, b.TidX())
	m := ptx.NewModule()
	m.Add(b.MustDone())
	prog, err := ptxas.Compile(m, ptxas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := isassi.Instrument(prog, isassi.Options{Where: isassi.BeforeMem, BeforeHandler: "h"}); err != nil {
		t.Fatal(err)
	}
	rt := isassi.NewRuntime(prog)
	rt.MustRegister(&isassi.Handler{Name: "h", Sequential: true,
		Fn: func(c *device.Ctx, args isassi.HandlerArgs) { fn(c) }})
	rt.Attach(dev)
	buf := dev.Alloc(4*32, "out")
	if _, err := dev.Launch(prog, "k", sim.LaunchParams{
		Grid: sim.D1(1), Block: sim.D1(32), Args: []uint64{buf},
	}); err != nil {
		t.Fatal(err)
	}
}
