package device

import (
	"math/bits"
	"sync"
)

// collectives is the per-invocation rendezvous that gives handler code its
// warp-synchronous semantics. All active lanes of a handler invocation
// share one instance. A collective operation (ballot, shuffle) completes
// when every lane that is still running has arrived; lanes whose handler
// function has returned are counted out, mirroring CUDA's rule that
// __ballot sees only the currently active threads of the warp.
type collectives struct {
	mu   sync.Mutex
	cond *sync.Cond

	laneMask uint32 // lanes participating in this invocation
	total    int    // popcount of laneMask
	done     int    // lanes whose handler has returned

	gen        int // current collective round
	arrived    int
	arrivedSet uint32
	predMask   uint32
	vals       [32]uint64

	// Results of the most recently completed round.
	lastPred    uint32
	lastArrived uint32
	lastVals    [32]uint64
}

func newCollectives(laneMask uint32) *collectives {
	c := &collectives{laneMask: laneMask}
	c.total = bits.OnesCount32(laneMask)
	c.cond = sync.NewCond(&c.mu)
	return c
}

// finishRoundLocked publishes the pending round's results and wakes waiters.
func (c *collectives) finishRoundLocked() {
	c.lastPred = c.predMask
	c.lastArrived = c.arrivedSet
	c.lastVals = c.vals
	c.predMask = 0
	c.arrivedSet = 0
	c.arrived = 0
	c.gen++
	c.cond.Broadcast()
}

// arrive records one lane reaching a collective and blocks until the round
// completes. The caller must have already deposited its contribution.
func (c *collectives) arriveLocked() {
	c.arrived++
	if c.arrived+c.done == c.total {
		c.finishRoundLocked()
		return
	}
	myGen := c.gen
	for c.gen == myGen {
		c.cond.Wait()
	}
}

// ballot implements __ballot for one lane.
func (c *collectives) ballot(lane int, pred bool) uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.arrivedSet |= 1 << lane
	if pred {
		c.predMask |= 1 << lane
	}
	c.arriveLocked()
	return c.lastPred
}

// participants returns the lanes that took part in the last completed
// round (the divisor for __all).
func (c *collectives) participants() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastArrived
}

// shuffle implements __shfl for one lane: deposit v, wait, read srcLane's.
func (c *collectives) shuffle(lane int, v uint64, srcLane int) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.arrivedSet |= 1 << lane
	c.vals[lane] = v
	c.arriveLocked()
	if srcLane < 0 || srcLane >= 32 || c.lastArrived&(1<<srcLane) == 0 {
		return v
	}
	return c.lastVals[srcLane]
}

// laneDone removes a returned lane from all future rounds; if it was the
// last straggler of a pending round, the round completes without it.
func (c *collectives) laneDone() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.done++
	if c.arrived > 0 && c.arrived+c.done == c.total {
		c.finishRoundLocked()
	}
}
