// Package uvm is the paper's §9.4 heterogeneous-instrumentation prototype:
// "we have already built a prototype to examine the sharing and CPU-GPU
// page migration behavior in a Unified Virtual Memory system by tracing the
// addresses touched by the CPU and GPU. A CPU-side handler processes and
// correlates the traces."
//
// The Manager models managed (cudaMallocManaged-style) allocations whose
// 4 KiB pages migrate on first touch: GPU touches are observed by a SASSI
// before-memory handler; CPU touches go through the Manager's host
// accessors. Both feed one unified event stream that the host-side
// correlator turns into migration and ping-pong statistics.
package uvm

import (
	"fmt"
	"math"
	"sort"

	"sassi/internal/cuda"
	"sassi/internal/device"
	"sassi/internal/mem"
	"sassi/internal/sassi"
)

// PageSize is the migration granularity.
const PageSize = 4096

// Side identifies a processor.
type Side uint8

// Processors.
const (
	CPU Side = iota
	GPU
)

func (s Side) String() string {
	if s == CPU {
		return "CPU"
	}
	return "GPU"
}

// Event is one touch of managed memory.
type Event struct {
	Who   Side
	Addr  uint64
	Write bool
}

// Manager tracks managed allocations and their page residency.
type Manager struct {
	ctx *cuda.Context

	ranges []managedRange
	pages  map[uint64]Side // page base -> current location
	lastMv map[uint64]Side // last migration direction (ping-pong detection)

	Events []Event
	// TraceEvents caps the recorded stream (0 = unlimited).
	TraceEvents int

	// Stats.
	H2D, D2H   uint64 // page migrations
	PingPongs  uint64 // migrations that immediately reverse a prior one
	GPUTouches uint64
	CPUTouches uint64
}

type managedRange struct{ base, size uint64 }

// NewManager creates a UVM manager over a context. Like the MemTracer, the
// manager observes a single ordered event stream (page migrations depend on
// touch order), so it pins the context's device to sequential SM execution.
func NewManager(ctx *cuda.Context) *Manager {
	ctx.Device().Cfg.SequentialSMs = true
	return &Manager{
		ctx:    ctx,
		pages:  make(map[uint64]Side),
		lastMv: make(map[uint64]Side),
	}
}

// AllocManaged allocates managed memory; pages start CPU-resident, as with
// first-touch cudaMallocManaged.
func (m *Manager) AllocManaged(size uint64, name string) cuda.DevPtr {
	p := m.ctx.Malloc(size, name)
	m.ranges = append(m.ranges, managedRange{base: uint64(p), size: size})
	for page := uint64(p) &^ (PageSize - 1); page < uint64(p)+size; page += PageSize {
		m.pages[page] = CPU
	}
	return p
}

// isManaged reports whether addr is inside a managed allocation.
func (m *Manager) isManaged(addr uint64) bool {
	for _, r := range m.ranges {
		if addr >= r.base && addr < r.base+r.size {
			return true
		}
	}
	return false
}

func (m *Manager) record(e Event) {
	if m.TraceEvents == 0 || len(m.Events) < m.TraceEvents {
		m.Events = append(m.Events, e)
	}
}

// touch moves the page if needed and updates statistics.
func (m *Manager) touch(addr uint64, who Side, write bool) {
	if !m.isManaged(addr) {
		return
	}
	if who == GPU {
		m.GPUTouches++
	} else {
		m.CPUTouches++
	}
	m.record(Event{Who: who, Addr: addr, Write: write})
	page := addr &^ (PageSize - 1)
	cur, ok := m.pages[page]
	if !ok {
		m.pages[page] = who
		return
	}
	if cur == who {
		return
	}
	// Migration.
	if who == GPU {
		m.H2D++
	} else {
		m.D2H++
	}
	if last, moved := m.lastMv[page]; moved && last != who {
		m.PingPongs++
	}
	m.lastMv[page] = who
	m.pages[page] = who
}

// Options returns the instrumentation spec for the GPU-side tracer.
func (m *Manager) Options() sassi.Options {
	return sassi.Options{
		Where:         sassi.BeforeMem,
		What:          sassi.PassMemoryInfo,
		BeforeHandler: "sassi_uvm_handler",
	}
}

// Handler returns the SASSI handler feeding GPU touches into the stream.
// Touches are recorded per warp access (one event per active lane).
func (m *Manager) Handler() *sassi.Handler {
	return &sassi.Handler{
		Name:       "sassi_uvm_handler",
		What:       sassi.PassMemoryInfo,
		Sequential: true, // the manager's maps are not goroutine-safe
		Fn: func(c *device.Ctx, args sassi.HandlerArgs) {
			if !args.BP.InstrWillExecute() {
				return
			}
			addr := args.MP.Address()
			if !mem.IsGlobal(addr) {
				return
			}
			m.touch(addr, GPU, args.MP.IsStore())
		},
	}
}

// Host accessors: the CPU side of the unified trace.

// HostReadF32 reads floats through the UVM layer, migrating pages CPU-ward.
func (m *Manager) HostReadF32(src cuda.DevPtr, count int) ([]float32, error) {
	for i := 0; i < count; i++ {
		m.touch(uint64(src)+uint64(4*i), CPU, false)
	}
	return m.ctx.ReadF32(src, count)
}

// HostWriteF32 writes floats through the UVM layer.
func (m *Manager) HostWriteF32(dst cuda.DevPtr, vals []float32) error {
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		putF32(buf[4*i:], v)
		m.touch(uint64(dst)+uint64(4*i), CPU, true)
	}
	return m.ctx.MemcpyHtoD(dst, buf)
}

// HostReadU32 reads words through the UVM layer.
func (m *Manager) HostReadU32(src cuda.DevPtr, count int) ([]uint32, error) {
	for i := 0; i < count; i++ {
		m.touch(uint64(src)+uint64(4*i), CPU, false)
	}
	return m.ctx.ReadU32(src, count)
}

// HostWriteU32 writes words through the UVM layer.
func (m *Manager) HostWriteU32(dst cuda.DevPtr, vals []uint32) error {
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		putU32(buf[4*i:], v)
		m.touch(uint64(dst)+uint64(4*i), CPU, true)
	}
	return m.ctx.MemcpyHtoD(dst, buf)
}

// Residency returns how many managed pages currently live on each side.
func (m *Manager) Residency() (cpu, gpu int) {
	for _, side := range m.pages {
		if side == CPU {
			cpu++
		} else {
			gpu++
		}
	}
	return
}

// SharedPages returns pages that both processors touched (the sharing set),
// sorted by address.
func (m *Manager) SharedPages() []uint64 {
	seen := map[uint64]uint8{}
	for _, e := range m.Events {
		page := e.Addr &^ (PageSize - 1)
		seen[page] |= 1 << e.Who
	}
	var out []uint64
	for page, mask := range seen {
		if mask == 3 {
			out = append(out, page)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Report renders the correlated statistics.
func (m *Manager) Report() string {
	cpu, gpu := m.Residency()
	return fmt.Sprintf(
		"uvm: %d CPU touches, %d GPU touches; migrations H2D=%d D2H=%d (ping-pong %d); residency CPU=%d GPU=%d pages; %d shared pages",
		m.CPUTouches, m.GPUTouches, m.H2D, m.D2H, m.PingPongs, cpu, gpu, len(m.SharedPages()))
}

// Little-endian encoders (local copies; the cuda package works in bytes).
func putF32(b []byte, v float32) {
	putU32(b, math.Float32bits(v))
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
