package uvm_test

import (
	"testing"

	"sassi/internal/cuda"
	"sassi/internal/ptx"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	"sassi/internal/sassi"
	"sassi/internal/sim"
	"sassi/internal/uvm"
)

// scaleProg builds data[i] *= 2 for i < n.
func scaleProg(t *testing.T) *sass.Program {
	t.Helper()
	b := ptx.NewKernel("scale")
	data := b.ParamU64("data")
	n := b.ParamU32("n")
	i := b.GlobalTidX()
	b.If(b.Setp(sass.CmpLT, i, n), func() {
		v := b.LdGlobalU32(b.Index(data, i, 2), 0)
		b.StGlobalU32(b.Index(data, i, 2), 0, b.MulI(v, 2))
	})
	m := ptx.NewModule()
	m.Add(b.MustDone())
	prog, err := ptxas.Compile(m, ptxas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestMigrationLifecycle(t *testing.T) {
	ctx := cuda.NewContext(sim.MiniGPU())
	mgr := uvm.NewManager(ctx)
	prog := scaleProg(t)
	if err := sassi.Instrument(prog, mgr.Options()); err != nil {
		t.Fatal(err)
	}
	rt := sassi.NewRuntime(prog)
	rt.MustRegister(mgr.Handler())
	rt.Attach(ctx.Device())

	const n = 2048 // two pages worth of u32s
	buf := mgr.AllocManaged(4*n, "data")
	host := make([]uint32, n)
	for i := range host {
		host[i] = uint32(i)
	}
	// CPU writes: pages stay CPU-resident.
	if err := mgr.HostWriteU32(buf, host); err != nil {
		t.Fatal(err)
	}
	cpu, gpu := mgr.Residency()
	if gpu != 0 || cpu < 2 {
		t.Fatalf("after host write: residency cpu=%d gpu=%d", cpu, gpu)
	}

	// GPU kernel touches every page: all migrate to the device.
	if _, err := ctx.LaunchKernel(prog, "scale", sim.LaunchParams{
		Grid: sim.D1((n + 127) / 128), Block: sim.D1(128),
		Args: []uint64{uint64(buf), n},
	}); err != nil {
		t.Fatal(err)
	}
	cpu, gpu = mgr.Residency()
	if cpu != 0 || gpu < 2 {
		t.Fatalf("after kernel: residency cpu=%d gpu=%d", cpu, gpu)
	}
	if mgr.H2D < 2 {
		t.Errorf("H2D migrations = %d, want >= 2", mgr.H2D)
	}
	if mgr.GPUTouches == 0 {
		t.Error("no GPU touches traced")
	}

	// CPU reads the results: pages come back (D2H) and values are right.
	got, err := mgr.HostReadU32(buf, n)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != uint32(2*i) {
			t.Fatalf("data[%d] = %d", i, v)
		}
	}
	if mgr.D2H < 2 {
		t.Errorf("D2H migrations = %d", mgr.D2H)
	}

	// Second kernel: pages ping-pong back.
	if _, err := ctx.LaunchKernel(prog, "scale", sim.LaunchParams{
		Grid: sim.D1((n + 127) / 128), Block: sim.D1(128),
		Args: []uint64{uint64(buf), n},
	}); err != nil {
		t.Fatal(err)
	}
	if mgr.PingPongs == 0 {
		t.Error("no ping-pong migrations detected after alternating access")
	}
	if len(mgr.SharedPages()) < 2 {
		t.Errorf("shared pages = %d, want >= 2", len(mgr.SharedPages()))
	}
	if mgr.Report() == "" {
		t.Error("empty report")
	}
}

func TestUnmanagedMemoryIgnored(t *testing.T) {
	ctx := cuda.NewContext(sim.MiniGPU())
	mgr := uvm.NewManager(ctx)
	prog := scaleProg(t)
	if err := sassi.Instrument(prog, mgr.Options()); err != nil {
		t.Fatal(err)
	}
	rt := sassi.NewRuntime(prog)
	rt.MustRegister(mgr.Handler())
	rt.Attach(ctx.Device())

	// Plain (unmanaged) allocation: no UVM events.
	buf := ctx.AllocU32("plain", make([]uint32, 256))
	if _, err := ctx.LaunchKernel(prog, "scale", sim.LaunchParams{
		Grid: sim.D1(1), Block: sim.D1(128), Args: []uint64{uint64(buf), 128},
	}); err != nil {
		t.Fatal(err)
	}
	if mgr.GPUTouches != 0 || len(mgr.Events) != 0 {
		t.Errorf("unmanaged memory traced: touches=%d events=%d", mgr.GPUTouches, len(mgr.Events))
	}
}

func TestEventCap(t *testing.T) {
	ctx := cuda.NewContext(sim.MiniGPU())
	mgr := uvm.NewManager(ctx)
	mgr.TraceEvents = 10
	buf := mgr.AllocManaged(4*100, "d")
	_ = mgr.HostWriteU32(buf, make([]uint32, 100))
	if len(mgr.Events) != 10 {
		t.Errorf("events = %d, want cap 10", len(mgr.Events))
	}
	if mgr.CPUTouches != 100 {
		t.Errorf("touch stats should not be capped: %d", mgr.CPUTouches)
	}
}
