package sassi_test

import (
	"testing"

	"sassi"
	"sassi/internal/cuda"
	"sassi/internal/experiments"
	"sassi/internal/handlers"
	"sassi/internal/ptxas"
	isassi "sassi/internal/sassi"
	"sassi/internal/sim"
	"sassi/internal/workloads"
)

// Each benchmark regenerates one of the paper's tables or figures; the
// printed metrics summarize the reproduced result. `go test -bench .`
// therefore re-derives the whole evaluation. The cmd/experiments binary
// prints the full formatted tables.

func benchEnv() experiments.Env {
	return experiments.Env{Config: sim.KeplerK10(), Fast: true}
}

// BenchmarkTable1 regenerates the branch-divergence table (Case Study I).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchEnv())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var worst float64
			for _, r := range rows {
				if r.DynPc > worst {
					worst = r.DynPc
				}
			}
			b.ReportMetric(worst, "worst-dyn-divergent-%")
			b.ReportMetric(float64(len(rows)), "rows")
		}
	}
}

// BenchmarkFigure5 regenerates the per-branch divergence histograms.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := experiments.Figure5(benchEnv())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(data["1M"])), "branches-1M")
			b.ReportMetric(float64(len(data["UT"])), "branches-UT")
		}
	}
}

// BenchmarkFigure7 regenerates the unique-cacheline PMFs (Case Study II).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure7(benchEnv())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.App == "minife.csr" {
					b.ReportMetric(100*r.FullyDiverged, "csr-fully-diverged-%")
				}
				if r.App == "minife.ell" {
					b.ReportMetric(r.MeanUnique, "ell-mean-unique-lines")
				}
			}
		}
	}
}

// BenchmarkFigure8 regenerates the occupancy-by-divergence matrices.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure8(benchEnv())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(r.CSR.TotalAccesses()), "csr-warp-accesses")
			b.ReportMetric(float64(r.ELL.TotalAccesses()), "ell-warp-accesses")
		}
	}
}

// BenchmarkTable2 regenerates value profiling over a representative subset
// (pass -bench-table2-full via cmd/experiments for the whole suite).
func BenchmarkTable2(b *testing.B) {
	apps := []string{
		"parboil.bfs", "parboil.sgemm", "parboil.spmv", "parboil.stencil",
		"rodinia.b+tree", "rodinia.backprop", "rodinia.nn", "rodinia.hotspot",
	}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(benchEnv(), apps)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var dynConst, dynScalar float64
			for _, r := range rows {
				dynConst += r.DynConstBits
				dynScalar += r.DynScalar
			}
			b.ReportMetric(dynConst/float64(len(rows)), "mean-dyn-const-bits-%")
			b.ReportMetric(dynScalar/float64(len(rows)), "mean-dyn-scalar-%")
		}
	}
}

// BenchmarkFigure10 runs reduced error-injection campaigns (Case Study IV);
// cmd/experiments -injections 1000 reproduces the paper's full scale.
func BenchmarkFigure10(b *testing.B) {
	apps := []string{"rodinia.kmeans", "rodinia.nn", "parboil.histo"}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure10(benchEnv(), apps, 20, 42)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var masked, crashes float64
			for _, r := range rows {
				masked += r.Result.Fraction(sassi.Masked)
				crashes += r.Result.Fraction(sassi.Crash) + r.Result.Fraction(sassi.Hang)
			}
			b.ReportMetric(100*masked/float64(len(rows)), "mean-masked-%")
			b.ReportMetric(100*crashes/float64(len(rows)), "mean-crash+hang-%")
		}
	}
}

// BenchmarkTable3 measures instrumentation overheads on a subset.
func BenchmarkTable3(b *testing.B) {
	apps := []string{"demo.vecadd", "parboil.sgemm", "parboil.stencil", "rodinia.nn"}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(benchEnv(), apps)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var branch, value float64
			for _, r := range rows {
				branch += r.K[0]
				value += r.K[2]
			}
			b.ReportMetric(branch/float64(len(rows)), "mean-K-branch")
			b.ReportMetric(value/float64(len(rows)), "mean-K-valueprof")
		}
	}
}

// Ablation benches for the design choices DESIGN.md calls out.

// instrumentedRunCtx runs one workload under an instrumentation setup and
// returns the context for stats inspection.
func instrumentedRunCtx(b *testing.B, app string, setup func(ctx *cuda.Context) (*isassi.Handler, isassi.Options)) *cuda.Context {
	b.Helper()
	spec, _ := workloads.Get(app)
	prog, err := spec.Compile(ptxas.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ctx := cuda.NewContext(sim.KeplerK10())
	h, opts := setup(ctx)
	if err := isassi.Instrument(prog, opts); err != nil {
		b.Fatal(err)
	}
	rt := isassi.NewRuntime(prog)
	rt.MustRegister(h)
	rt.Attach(ctx.Device())
	if _, err := spec.Run(ctx, prog, spec.DefaultDataset()); err != nil {
		b.Fatal(err)
	}
	return ctx
}

func instrumentedCycles(b *testing.B, app string, setup func(ctx *cuda.Context) (*isassi.Handler, isassi.Options)) uint64 {
	return instrumentedRunCtx(b, app, setup).TotalKernelCycles
}

// BenchmarkAblationABI quantifies §9.1's claim that ABI setup and register
// spilling dominate instrumentation cost: it separates the modeled
// overhead into the injected SASS (spills, parameter objects, call setup)
// versus the handler-body charge. The paper measures ~80% for the former.
func BenchmarkAblationABI(b *testing.B) {
	spec, _ := workloads.Get("parboil.stencil")
	cfg := sim.KeplerK10()
	base := func() uint64 {
		prog, _ := spec.Compile(ptxas.Options{})
		ctx := cuda.NewContext(cfg)
		if _, err := spec.Run(ctx, prog, spec.DefaultDataset()); err != nil {
			b.Fatal(err)
		}
		return ctx.TotalKernelCycles
	}()
	for i := 0; i < b.N; i++ {
		ctx := instrumentedRunCtx(b, "parboil.stencil", func(ctx *cuda.Context) (*isassi.Handler, isassi.Options) {
			p := handlers.NewOpCounter(ctx)
			return p.Handler(true), p.Options()
		})
		if i == 0 {
			overhead := float64(ctx.TotalKernelCycles - base)
			bodyCharge := float64(ctx.TotalHandlerCalls) * float64(cfg.HandlerBodyCost)
			b.ReportMetric(100*(overhead-bodyCharge)/overhead, "abi-share-of-overhead-%")
		}
	}
}

// BenchmarkAblationWarpSync compares the sequential lane execution of a
// collective-free handler against goroutine-per-lane warp-synchronous
// execution (host simulation cost, not modeled cycles).
func BenchmarkAblationWarpSync(b *testing.B) {
	for _, mode := range []struct {
		name       string
		sequential bool
	}{{"sequential", true}, {"warpsync", false}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				instrumentedCycles(b, "demo.vecadd", func(ctx *cuda.Context) (*isassi.Handler, isassi.Options) {
					p := handlers.NewOpCounter(ctx)
					return p.Handler(mode.sequential), p.Options()
				})
			}
		})
	}
}

// BenchmarkAblationLineSize measures Figure 7 sensitivity to the
// coalescing granularity (32B vs 128B lines).
func BenchmarkAblationLineSize(b *testing.B) {
	for _, bits := range []uint{5, 7} {
		bits := bits
		b.Run(map[uint]string{5: "32B", 7: "128B"}[bits], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var p *handlers.MemDivProfiler
				spec, _ := workloads.Get("minife.csr")
				prog, err := spec.Compile(ptxas.Options{})
				if err != nil {
					b.Fatal(err)
				}
				ctx := cuda.NewContext(sim.KeplerK10())
				p = handlers.NewMemDivProfiler(ctx)
				p.OffsetBits = bits
				opts := p.Options()
				if err := isassi.Instrument(prog, opts); err != nil {
					b.Fatal(err)
				}
				rt := isassi.NewRuntime(prog)
				rt.MustRegister(p.SequentialHandler())
				rt.Attach(ctx.Device())
				if _, err := spec.Run(ctx, prog, "default"); err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					m, _ := p.Matrix()
					pmf := m.UniqueLinePMF()
					var mean float64
					for u, f := range pmf {
						mean += float64(u+1) * f
					}
					b.ReportMetric(mean, "mean-unique-lines")
				}
			}
		})
	}
}

// BenchmarkAblationIfConvert measures the backend's short-branch
// predication: cycles with and without if-conversion.
func BenchmarkAblationIfConvert(b *testing.B) {
	run := func(noIfCvt bool) uint64 {
		spec, _ := workloads.Get("rodinia.pathfinder")
		prog, err := spec.Compile(ptxas.Options{NoIfConvert: noIfCvt})
		if err != nil {
			b.Fatal(err)
		}
		ctx := cuda.NewContext(sim.KeplerK10())
		if _, err := spec.Run(ctx, prog, spec.DefaultDataset()); err != nil {
			b.Fatal(err)
		}
		return ctx.TotalKernelCycles
	}
	for i := 0; i < b.N; i++ {
		with := run(false)
		without := run(true)
		if i == 0 {
			b.ReportMetric(float64(without)/float64(with), "cycles-ratio-noifcvt/ifcvt")
		}
	}
}
