module sassi

go 1.22
