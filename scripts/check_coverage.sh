#!/usr/bin/env bash
# check_coverage.sh — statement-coverage non-regression gate.
#
# Runs the full test suite with -coverprofile, extracts the total statement
# coverage, and fails if it fell more than MARGIN percentage points below
# the checked-in baseline (scripts/coverage_baseline.txt). A small margin
# absorbs run-to-run noise from timing-dependent paths (worker pools,
# parallel SM interleavings) without letting real regressions through.
#
# To ratchet the baseline up after adding tests:
#   ./scripts/check_coverage.sh --update
set -euo pipefail

cd "$(dirname "$0")/.."
BASELINE_FILE=scripts/coverage_baseline.txt
MARGIN=${MARGIN:-1.0}
PROFILE=${PROFILE:-/tmp/sassi-cover.out}

go test ./... -coverprofile="$PROFILE" -covermode=atomic >/dev/null

total=$(go tool cover -func="$PROFILE" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
if [ -z "$total" ]; then
    echo "check_coverage: could not extract total coverage" >&2
    exit 2
fi

if [ "${1:-}" = "--update" ]; then
    echo "$total" > "$BASELINE_FILE"
    echo "check_coverage: baseline updated to ${total}%"
    exit 0
fi

baseline=$(cat "$BASELINE_FILE")
floor=$(awk -v b="$baseline" -v m="$MARGIN" 'BEGIN {printf "%.1f", b - m}')
echo "check_coverage: total ${total}% (baseline ${baseline}%, floor ${floor}%)"
if awk -v t="$total" -v f="$floor" 'BEGIN {exit !(t < f)}'; then
    echo "check_coverage: FAIL — coverage fell below baseline-${MARGIN} floor" >&2
    echo "If the drop is intentional, run ./scripts/check_coverage.sh --update" >&2
    exit 1
fi
