package sassi_test

import (
	"testing"

	"sassi"
)

// TestPublicAPIRoundtrip exercises the facade end to end: author, compile,
// instrument, run, collect — everything a downstream user touches.
func TestPublicAPIRoundtrip(t *testing.T) {
	b := sassi.NewKernel("scale")
	data := b.ParamU64("data")
	n := b.ParamU32("n")
	i := b.GlobalTidX()
	b.If(b.Setp(sassi.CmpLT, i, n), func() {
		v := b.LdGlobalU32(b.Index(data, i, 2), 0)
		b.StGlobalU32(b.Index(data, i, 2), 0, b.MulI(v, 3))
	})
	prog, err := sassi.CompileModule(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := sassi.Instrument(prog, sassi.InstrumentOptions{
		Where:         sassi.BeforeAll,
		What:          sassi.PassMemoryInfo,
		BeforeHandler: "h",
	}); err != nil {
		t.Fatal(err)
	}
	ctx := sassi.NewContext(sassi.MiniGPU())
	counter := ctx.Malloc(8, "counter")
	rt := sassi.NewRuntime(prog)
	rt.MustRegister(&sassi.Handler{
		Name: "h", What: sassi.PassMemoryInfo,
		Fn: func(c *sassi.ThreadCtx, args sassi.HandlerArgs) {
			if args.BP.IsMem() && args.BP.InstrWillExecute() {
				c.AtomicAdd64(uint64(counter), 1)
			}
		},
	})
	rt.Attach(ctx.Device())

	host := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	dev := ctx.AllocU32("data", host)
	stats, err := ctx.LaunchKernel(prog, "scale", sassi.LaunchParams{
		Grid: sassi.D1(1), Block: sassi.D1(32),
		Args: []uint64{uint64(dev), uint64(len(host))},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ctx.ReadU32(dev, len(host))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != host[i]*3 {
			t.Fatalf("data[%d] = %d", i, v)
		}
	}
	cnt, _ := ctx.ReadU64(counter, 1)
	if cnt[0] != uint64(2*len(host)) { // one load + one store per element
		t.Errorf("memory sites counted = %d, want %d", cnt[0], 2*len(host))
	}
	if stats.HandlerCalls == 0 {
		t.Error("no handler calls recorded")
	}
}

// TestWorkloadRegistryViaFacade sanity-checks the suite surface.
func TestWorkloadRegistryViaFacade(t *testing.T) {
	names := sassi.Workloads()
	if len(names) < 25 {
		t.Fatalf("workload suite has %d entries, want >= 25", len(names))
	}
	for _, name := range []string{"parboil.bfs", "rodinia.heartwall", "minife.csr"} {
		spec, ok := sassi.GetWorkload(name)
		if !ok {
			t.Errorf("%s missing", name)
			continue
		}
		if spec.DefaultDataset() == "" {
			t.Errorf("%s has no datasets", name)
		}
	}
	if _, ok := sassi.GetWorkload("ghost"); ok {
		t.Error("phantom workload found")
	}
}

// TestProfilersViaFacade runs the branch profiler through the facade.
func TestProfilersViaFacade(t *testing.T) {
	spec, _ := sassi.GetWorkload("parboil.bfs")
	prog, err := spec.Compile(sassi.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := sassi.NewContext(sassi.MiniGPU())
	prof := sassi.NewBranchProfiler(ctx)
	if err := sassi.Instrument(prog, prof.Options()); err != nil {
		t.Fatal(err)
	}
	rt := sassi.NewRuntime(prog)
	rt.MustRegister(prof.SequentialHandler())
	rt.Attach(ctx.Device())
	res, err := spec.Run(ctx, prog, "UT")
	if err != nil {
		t.Fatal(err)
	}
	if res.VerifyErr != nil {
		t.Fatal(res.VerifyErr)
	}
	s, err := prof.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if s.DynamicDivergent == 0 {
		t.Error("bfs reported no divergence")
	}
}
